// Clang Thread Safety Analysis annotations and the annotated, ranked mutex.
//
// The annotations turn lock discipline into a compile-time proof: a member
// declared ADICT_GUARDED_BY(mutex_) can only be touched while `mutex_` is
// held, a function declared ADICT_REQUIRES(mutex_) can only be called with
// the lock held, and a violation is a hard error under
// `clang++ -Wthread-safety -Werror` (the `thread-safety` CI job). Compilers
// without the attributes (GCC) see empty macros, so the annotations cost
// nothing outside the analysis.
//
// Every Mutex is additionally constructed with a (LockRank, name) pair from
// util/lock_rank.h: debug builds enforce strictly-decreasing-rank
// acquisition per thread and abort on lock-order cycles with both offending
// stacks; docs/lock_hierarchy.md is the canonical rank table and the
// adict_lint `locks` check keeps code, ranks, and table in sync.
//
// Use the ADICT_-prefixed macros, the `Mutex`/`MutexCv` wrappers, and
// `MutexLock` instead of raw std::mutex / std::lock_guard /
// std::condition_variable in any class with shared mutable state;
// docs/static_analysis.md walks through adding a new mutex. Reference:
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html (the macro set
// mirrors Abseil's thread_annotations.h).
#ifndef ADICT_UTIL_THREAD_ANNOTATIONS_H_
#define ADICT_UTIL_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "util/lock_rank.h"

#if defined(__clang__) && (!defined(SWIG))
#define ADICT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ADICT_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Declares a type to be a capability (lockable). Applied to Mutex below;
/// user code rarely needs it directly.
#define ADICT_CAPABILITY(x) ADICT_THREAD_ANNOTATION(capability(x))

/// A RAII type that acquires a capability in its constructor and releases it
/// in its destructor (MutexLock below).
#define ADICT_SCOPED_CAPABILITY ADICT_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while the given mutex is held.
#define ADICT_GUARDED_BY(x) ADICT_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given mutex (the
/// pointer itself may be read freely).
#define ADICT_PT_GUARDED_BY(x) ADICT_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function callable only while holding the given mutex(es); the caller
/// still holds them on return.
#define ADICT_REQUIRES(...) \
  ADICT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function callable only while NOT holding the given mutex(es) — the
/// annotation that proves freedom from self-deadlock on a non-reentrant
/// mutex.
#define ADICT_EXCLUDES(...) \
  ADICT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function that acquires the given mutex(es) and does not release them.
#define ADICT_ACQUIRE(...) \
  ADICT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the given mutex(es), which must be held on entry.
#define ADICT_RELEASE(...) \
  ADICT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that returns a reference to the given mutex (lets the analysis
/// see through accessors).
#define ADICT_RETURN_CAPABILITY(x) ADICT_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use needs a
/// comment explaining why the discipline holds anyway.
#define ADICT_NO_THREAD_SAFETY_ANALYSIS \
  ADICT_THREAD_ANNOTATION(no_thread_safety_analysis)

/// For predicate lambdas passed to MutexCv::Await/AwaitFor. Await's
/// contract is that the predicate runs with the MutexCv held, but the
/// analysis evaluates a lambda body against an empty lock set (it cannot
/// see the caller's), so guarded-member reads inside the predicate would be
/// false positives. Spell the exemption with this macro so the intent —
/// "held via Await" — is greppable.
#define ADICT_CV_PREDICATE ADICT_NO_THREAD_SAFETY_ANALYSIS

namespace adict {

/// std::mutex with capability annotations and a lock rank, so members can
/// be declared ADICT_GUARDED_BY(mutex_), functions ADICT_REQUIRES(mutex_),
/// and debug builds can enforce the acquisition order of
/// docs/lock_hierarchy.md. Same cost and semantics as std::mutex in
/// release builds; Lock/Unlock exist for the rare manual path, MutexLock
/// is the normal way to hold it.
class ADICT_CAPABILITY("mutex") Mutex {
 public:
  Mutex(LockRank rank, const char* name) : rank_(rank), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ADICT_ACQUIRE() {
#if ADICT_DEADLOCK_CHECK
    // Before blocking, so a would-deadlock acquisition is reported instead
    // of hanging.
    lockdebug::OnAcquire(rank_, name_);
#endif
    mutex_.lock();
  }

  void Unlock() ADICT_RELEASE() {
    mutex_.unlock();
#if ADICT_DEADLOCK_CHECK
    lockdebug::OnRelease(rank_, name_);
#endif
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 protected:
  std::mutex mutex_;  // MutexCv's condition variable waits on it

 private:
  const LockRank rank_;
  const char* const name_;
};

/// RAII lock over Mutex (the annotated std::lock_guard).
class ADICT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mutex) ADICT_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_->Lock();
  }
  ~MutexLock() ADICT_RELEASE() { mutex_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mutex_;
};

/// Mutex with an attached condition variable — the annotated, ranked
/// replacement for the bare std::mutex + std::condition_variable pairs the
/// wake/drain plumbing used to need. The API is predicate-only: there is
/// no bare Wait(), so a spurious wakeup can never leak past a caller
/// (every wait re-checks its condition by construction).
///
/// Usage:
///   MutexLock lock(&drain_mutex_);
///   drain_mutex_.Await([this]() ADICT_CV_PREDICATE {
///     return active == 0;  // guarded by drain_mutex_; held via Await
///   });
class ADICT_CAPABILITY("mutex") MutexCv : public Mutex {
 public:
  MutexCv(LockRank rank, const char* name) : Mutex(rank, name) {}

  /// Blocks until `pred()` is true. Must be called with this MutexCv held
  /// (MutexLock or Lock()); the lock is released while parked and held
  /// again both when `pred` runs and on return.
  template <typename Predicate>
  void Await(Predicate pred) ADICT_REQUIRES(this) {
    std::unique_lock<std::mutex> lock(mutex_, std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();  // the caller still owns the mutex
  }

  /// Await with a timeout. Returns pred()'s value at wakeup: true means
  /// the condition held, false means the wait timed out.
  template <typename Predicate>
  bool AwaitFor(std::chrono::milliseconds timeout, Predicate pred)
      ADICT_REQUIRES(this) {
    std::unique_lock<std::mutex> lock(mutex_, std::adopt_lock);
    const bool satisfied = cv_.wait_for(lock, timeout, std::move(pred));
    lock.release();  // the caller still owns the mutex
    return satisfied;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace adict

#endif  // ADICT_UTIL_THREAD_ANNOTATIONS_H_
