#include "util/zipf.h"

#include <cmath>

namespace adict {

double ZipfDistribution::Pow(double base, double exp) {
  return std::pow(base, exp);
}

}  // namespace adict
