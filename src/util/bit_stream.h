// Bit-granular output and input streams.
//
// All compressed dictionary payloads in this library are stored as one
// contiguous bit stream addressed by bit offsets, so codecs never need
// per-string terminators or byte padding. Bits are written MSB-first within
// each byte, which keeps the stream's lexicographic byte order consistent
// with the bit order (relevant for order-preserving codes).
#ifndef ADICT_UTIL_BIT_STREAM_H_
#define ADICT_UTIL_BIT_STREAM_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace adict {

/// Append-only bit stream writer. Bits are packed MSB-first into bytes.
class BitWriter {
 public:
  BitWriter() = default;

  /// Appends the `nbits` low-order bits of `value`, most significant first.
  void WriteBits(uint64_t value, int nbits) {
    ADICT_DCHECK(nbits >= 0 && nbits <= 64);
    for (int i = nbits - 1; i >= 0; --i) {
      WriteBit((value >> i) & 1u);
    }
  }

  /// Appends a single bit (0 or 1).
  void WriteBit(unsigned bit) {
    const uint64_t byte_index = bit_count_ >> 3;
    if (byte_index >= bytes_.size()) bytes_.push_back(0);
    if (bit) bytes_[byte_index] |= static_cast<uint8_t>(0x80u >> (bit_count_ & 7));
    ++bit_count_;
  }

  /// Number of bits written so far.
  uint64_t bit_count() const { return bit_count_; }

  /// Underlying byte buffer (last byte may be partially used).
  const std::vector<uint8_t>& bytes() const { return bytes_; }

  /// Moves the byte buffer out; the writer is left empty.
  std::vector<uint8_t> TakeBytes() {
    bit_count_ = 0;
    return std::move(bytes_);
  }

  void Clear() {
    bytes_.clear();
    bit_count_ = 0;
  }

 private:
  std::vector<uint8_t> bytes_;
  uint64_t bit_count_ = 0;
};

/// Bit stream reader positioned at an arbitrary bit offset.
class BitReader {
 public:
  /// Reads from `data` starting at absolute bit position `bit_offset`.
  /// `data` must outlive the reader.
  BitReader(const uint8_t* data, uint64_t bit_offset)
      : data_(data), pos_(bit_offset) {}

  /// Reads a single bit.
  unsigned ReadBit() {
    const unsigned bit = (data_[pos_ >> 3] >> (7 - (pos_ & 7))) & 1u;
    ++pos_;
    return bit;
  }

  /// Reads `nbits` bits MSB-first and returns them as the low-order bits of
  /// the result.
  uint64_t ReadBits(int nbits) {
    ADICT_DCHECK(nbits >= 0 && nbits <= 64);
    uint64_t value = 0;
    for (int i = 0; i < nbits; ++i) {
      value = (value << 1) | ReadBit();
    }
    return value;
  }

  /// Absolute bit position of the reader.
  uint64_t position() const { return pos_; }

 private:
  const uint8_t* data_;
  uint64_t pos_;
};

}  // namespace adict

#endif  // ADICT_UTIL_BIT_STREAM_H_
