// Lightweight runtime assertion macros.
//
// The library follows a no-exceptions style: precondition violations are
// programming errors and abort with a diagnostic. ADICT_CHECK is always on;
// ADICT_DCHECK compiles away in NDEBUG builds and is used on hot paths.
#ifndef ADICT_UTIL_CHECK_H_
#define ADICT_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define ADICT_CHECK(cond)                                                   \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "ADICT_CHECK failed: %s at %s:%d\n", #cond,      \
                   __FILE__, __LINE__);                                     \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define ADICT_CHECK_MSG(cond, msg)                                          \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "ADICT_CHECK failed: %s (%s) at %s:%d\n", #cond, \
                   msg, __FILE__, __LINE__);                                \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#ifdef NDEBUG
#define ADICT_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define ADICT_DCHECK(cond) ADICT_CHECK(cond)
#endif

#endif  // ADICT_UTIL_CHECK_H_
