// Deterministic pseudo-random number generation.
//
// All synthetic data in the repository is generated from explicitly seeded
// generators so that every test, example, and benchmark is reproducible.
#ifndef ADICT_UTIL_RNG_H_
#define ADICT_UTIL_RNG_H_

#include <cstdint>
#include <string>

namespace adict {

/// Small, fast, deterministic RNG (xorshift128+ seeded via splitmix64).
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) {
    // splitmix64 to spread the seed over both words.
    auto mix = [&seed]() {
      seed += 0x9e3779b97f4a7c15ull;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      return z ^ (z >> 31);
    };
    s0_ = mix();
    s1_ = mix();
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Random string of length `len` over `alphabet`.
  std::string RandomString(size_t len, std::string_view alphabet) {
    std::string s;
    s.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      s.push_back(alphabet[Uniform(alphabet.size())]);
    }
    return s;
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace adict

#endif  // ADICT_UTIL_RNG_H_
