// Wall-clock stopwatch used by benchmarks and the cost-model calibration.
#ifndef ADICT_UTIL_STOPWATCH_H_
#define ADICT_UTIL_STOPWATCH_H_

#include <chrono>

namespace adict {

/// Measures elapsed wall-clock time from construction or the last Restart().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace adict

#endif  // ADICT_UTIL_STOPWATCH_H_
