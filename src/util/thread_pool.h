// Work-stealing thread pool: the execution substrate of the morsel-parallel
// query engine (docs/parallelism.md).
//
// Design constraints, in order:
//   1. Morsel-driven parallelism (Hyrise/HyPer style): callers split work
//      into fixed-size morsels and drain a shared cursor, so load balances
//      itself — a worker that finishes a cheap morsel immediately takes the
//      next one, and no static partitioning can strand a slow thread.
//   2. The caller participates. ParallelFor never blocks the submitting
//      thread on a condition variable while there is work left: it drains
//      morsels alongside the workers, which makes the pool deadlock-free
//      under nested use (a participant can always finish the loop alone)
//      and means a pool of parallelism 1 degenerates to a plain serial loop
//      with zero synchronization.
//   3. Submitted tasks land in per-worker deques; an idle worker first pops
//      its own deque LIFO (cache-warm), then steals FIFO from a victim —
//      the classic work-stealing discipline. Steals are counted
//      (`pool.steals`) so imbalance is observable.
//   4. Everything is annotated for Clang Thread Safety Analysis; the pool's
//      mutexes follow the discipline documented in docs/static_analysis.md.
//
// The process-wide pool (`Pool()`) is sized by the ADICT_THREADS environment
// variable: unset or 0 means hardware concurrency, 1 means fully serial
// (no worker threads are spawned, every ParallelFor runs inline), N > 1
// means N-way parallelism (N - 1 workers plus the calling thread).
// docs/parallelism.md specifies the knob's semantics and lifecycle.
#ifndef ADICT_UTIL_THREAD_POOL_H_
#define ADICT_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/lock_rank.h"
#include "util/thread_annotations.h"

namespace adict {

class ThreadPool {
 public:
  /// Spawns `parallelism - 1` worker threads; the calling thread is the
  /// remaining lane (it participates in every ParallelFor). A parallelism
  /// of 0 or 1 spawns nothing and runs everything inline.
  explicit ThreadPool(size_t parallelism);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker threads plus the participating caller.
  size_t parallelism() const { return workers_.size() + 1; }

  /// Enqueues one task. With no workers the task runs inline, so Submit
  /// never requires a running pool to make progress.
  void Submit(std::function<void()> task);

  /// Runs `fn(chunk_begin, chunk_end)` over [begin, end) split into chunks
  /// of at most `grain` items, in parallel, and returns when every chunk
  /// has finished. Chunk boundaries depend only on (begin, end, grain) —
  /// never on the number of threads — so a caller that combines per-chunk
  /// results in chunk order gets bit-identical output at any parallelism
  /// (the determinism contract of docs/parallelism.md). `fn` must not
  /// throw and must not recursively call ParallelFor on the same pool's
  /// lanes it is running on (leaf work only).
  void ParallelFor(uint64_t begin, uint64_t end, uint64_t grain,
                   const std::function<void(uint64_t, uint64_t)>& fn);

  /// Tasks stolen from another worker's deque since construction.
  uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }

  /// Tasks submitted but not yet popped by any worker (queue depth).
  uint64_t queued() const { return queued_.load(std::memory_order_relaxed); }

  /// Number of chunks ParallelFor will produce for `items` at `grain`.
  static uint64_t NumChunks(uint64_t items, uint64_t grain) {
    return grain == 0 ? 0 : (items + grain - 1) / grain;
  }

 private:
  /// One worker's deque. The owner pops the back (LIFO), thieves take the
  /// front (FIFO), both under the worker's own mutex — contention is per
  /// worker, not global.
  struct Worker {
    Mutex mutex{LockRank::kPoolWorker, "ThreadPool.Worker.mutex"};
    std::deque<std::function<void()>> tasks ADICT_GUARDED_BY(mutex);
  };

  void WorkerLoop(size_t index);
  /// Pops a task for worker `index`: own deque first, then steals.
  /// Returns false when nothing is runnable anywhere.
  bool PopTask(size_t index, std::function<void()>* task, bool* stolen)
      ADICT_EXCLUDES(wake_mutex_);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Sleep/wake plumbing. The condition variable guards no pool data — the
  // deques have their own mutexes — it only parks idle workers; the
  // predicate reads the atomics below.
  MutexCv wake_mutex_{LockRank::kPoolWake, "ThreadPool.wake_mutex_"};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> queued_{0};     // submitted, not yet popped
  std::atomic<uint64_t> next_queue_{0}; // round-robin submit cursor
  std::atomic<uint64_t> steals_{0};
};

/// The process-wide pool, created on first use with DefaultPoolParallelism().
/// Never destroyed. See docs/parallelism.md for the lifecycle.
ThreadPool& Pool();

/// Parallelism of the process-wide pool (workers + caller); 1 means serial.
size_t PoolParallelism();

/// Replaces the process-wide pool with one of the given parallelism.
/// Only safe while no thread is inside the old pool (benchmark sweeps and
/// tests call it between quiescent phases); concurrent queries must never
/// race a resize.
void SetPoolParallelism(size_t parallelism);

/// ADICT_THREADS semantics: unset/empty/"0" -> hardware concurrency,
/// otherwise the parsed value clamped to [1, 256].
size_t DefaultPoolParallelism();

}  // namespace adict

#endif  // ADICT_UTIL_THREAD_POOL_H_
