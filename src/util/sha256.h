// Minimal SHA-256 implementation (FIPS 180-4).
//
// Used by the `hash` survey data set generator, which reproduces the paper's
// "salted SHA hashes of passwords, all starting with the same prefix"
// workload. Not intended as a general-purpose cryptographic library.
#ifndef ADICT_UTIL_SHA256_H_
#define ADICT_UTIL_SHA256_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace adict {

/// Computes the SHA-256 digest of `data`.
std::array<uint8_t, 32> Sha256(std::string_view data);

/// Computes the SHA-256 digest of `data` and returns it as lowercase hex.
std::string Sha256Hex(std::string_view data);

}  // namespace adict

#endif  // ADICT_UTIL_SHA256_H_
