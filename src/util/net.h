// Shared POSIX socket plumbing for the serving surfaces.
//
// Both network front-ends — the observability HTTP exporter
// (obs/http_exporter.h) and the binary query server (server/query_server.h)
// — need the same listen-socket setup: IPv4 socket with CLOEXEC,
// SO_REUSEADDR (so a restart never trips over TIME_WAIT), a validated bind
// address, a bounded accept backlog, and an ephemeral-port readback for
// tests. This header is that setup, once, with a Status-based error path so
// a busy port can never take the store down. It also owns the two transfer
// loops the front-ends share: a full-buffer send that retries short writes
// and a stop-aware exact-length receive for framed protocols.
//
// Everything here is dependency-free raw POSIX; no third-party networking.
#ifndef ADICT_UTIL_NET_H_
#define ADICT_UTIL_NET_H_

#include <atomic>
#include <cstddef>
#include <string>
#include <string_view>

#include "util/status.h"

namespace adict {

struct ListenOptions {
  /// TCP port; 0 picks an ephemeral port (read it back from
  /// ListenSocket::port — tests use this to avoid collisions).
  int port = 0;
  /// Bind address. The default only accepts loopback connections; bind
  /// "0.0.0.0" deliberately to expose the service to the network.
  std::string bind_address = "127.0.0.1";
  /// Accept backlog passed to listen(2): connections the kernel queues
  /// before completing the handshake. Part of admission control — beyond
  /// it, connection attempts fail at the client instead of piling up.
  int backlog = 16;
};

/// An open, listening TCP socket. `port` is the bound port (resolved when
/// ListenOptions::port was 0). The caller owns `fd` and must ::close it.
struct ListenSocket {
  int fd = -1;
  int port = 0;
};

/// Opens an IPv4 listening socket per `options`: SOCK_CLOEXEC,
/// SO_REUSEADDR, validated bind address, bounded backlog. Fails (never
/// aborts) on socket errors.
StatusOr<ListenSocket> OpenListenSocket(const ListenOptions& options);

/// Accepts one connection, polling `listen_fd` for up to `timeout_ms`.
/// Returns the connected fd, or -1 on timeout / EINTR / accept failure —
/// callers loop, re-checking their stop flag each round.
int AcceptWithTimeout(int listen_fd, int timeout_ms);

/// Sends the whole buffer, retrying short writes (MSG_NOSIGNAL, so a dead
/// peer raises no signal); best effort — returns false if the peer hung up
/// mid-send.
bool SendAll(int fd, std::string_view data);

/// Outcome of RecvExact, ordered from benign to broken.
enum class RecvResult {
  kOk,         ///< `len` bytes read
  kClosed,     ///< clean EOF before the first byte (peer done; not an error)
  kTruncated,  ///< EOF or reset after a partial read (broken frame)
  kStopped,    ///< `stop` became true while waiting
  kTimeout,    ///< no data for `idle_timeout_ms`
  kError,      ///< recv(2) failed
};

/// Reads exactly `len` bytes into `buf`, polling in short slices so a set
/// `stop` flag (may be null) interrupts the wait promptly and a stalled
/// peer cannot pin the calling thread past `idle_timeout_ms`.
RecvResult RecvExact(int fd, void* buf, size_t len,
                     const std::atomic<bool>* stop,
                     int idle_timeout_ms = 5000);

}  // namespace adict

#endif  // ADICT_UTIL_NET_H_
