// Named fail points for fault injection in tests and chaos runs.
//
// A fail point is a named site in the code that can be made to report
// failure on demand:
//
//   if (ADICT_FAIL_POINT("repair.build")) {
//     return Status::Internal("injected repair.build failure");
//   }
//
// Points are inert (one registry lookup, no failure) until activated, either
// programmatically —
//
//   failpoint::Enable("repair.build", "first:1");   // fail the first hit
//
// — or via the ADICT_FAILPOINTS environment variable, a semicolon-separated
// list parsed on first use: `ADICT_FAILPOINTS="dict.load=prob:0.01;
// repair.build=always"`.
//
// Trigger specs:
//   off       never fires (but hits are still counted)
//   always    every hit fires
//   nth:N     only the Nth hit fires (1-based)
//   first:N   hits 1..N fire, later hits pass
//   prob:P    each hit fires with probability P (deterministic RNG; SetSeed)
//
// Hit counts are kept per point regardless of whether it is enabled, so
// tests can assert a site was reached. The catalog of built-in points lives
// in docs/robustness.md. All functions are thread-safe; fail points sit on
// cold paths (build / merge / persistence), not per-operation hot paths.
#ifndef ADICT_UTIL_FAILPOINT_H_
#define ADICT_UTIL_FAILPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace adict {
namespace failpoint {

struct Spec {
  enum class Mode : uint8_t { kOff, kAlways, kNth, kFirst, kProb };
  Mode mode = Mode::kOff;
  uint64_t n = 0;           // kNth / kFirst
  double probability = 0.0;  // kProb

  static Spec Off() { return {}; }
  static Spec Always() { return {Mode::kAlways, 0, 0.0}; }
  static Spec Nth(uint64_t n) { return {Mode::kNth, n, 0.0}; }
  static Spec First(uint64_t n) { return {Mode::kFirst, n, 0.0}; }
  static Spec Prob(double p) { return {Mode::kProb, 0, p}; }
};

/// Parses "off" / "always" / "nth:3" / "first:2" / "prob:0.5". Returns false
/// (leaving *out untouched) on malformed input.
bool ParseSpec(std::string_view text, Spec* out);

/// Activates `name` with `spec`, resetting its hit count.
void Enable(std::string_view name, const Spec& spec);

/// Activates from "name=spec" form; returns false on malformed input.
bool EnableFromString(std::string_view assignment);

/// Deactivates `name` (hit counting continues).
void Disable(std::string_view name);

/// Deactivates every point and zeroes all hit counts. For tests.
void DisableAll();

/// Hits recorded for `name` since process start or the last Enable/DisableAll.
uint64_t HitCount(std::string_view name);

/// Names with an active (non-off) spec, sorted.
std::vector<std::string> ActiveNames();

/// Reseeds the RNG behind prob: triggers. For tests.
void SetSeed(uint64_t seed);

/// Records a hit on `name` and returns true if the point fires. Prefer the
/// ADICT_FAIL_POINT macro at call sites.
bool ShouldFail(std::string_view name);

}  // namespace failpoint
}  // namespace adict

#define ADICT_FAIL_POINT(name) (::adict::failpoint::ShouldFail(name))

#endif  // ADICT_UTIL_FAILPOINT_H_
