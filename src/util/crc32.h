// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for integrity
// checking of persisted images. Deterministic, cheap, and strong enough to
// catch the bit-flips and truncations the serialization envelope guards
// against; cryptographic integrity is out of scope (use util/sha256 there).
#ifndef ADICT_UTIL_CRC32_H_
#define ADICT_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace adict {

/// Incremental CRC-32: Update() over any number of chunks, then value().
class Crc32 {
 public:
  void Update(const void* data, size_t size);
  /// CRC of everything fed to Update() so far.
  uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot convenience.
uint32_t Crc32Of(const void* data, size_t size);

}  // namespace adict

#endif  // ADICT_UTIL_CRC32_H_
