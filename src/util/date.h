// Proleptic Gregorian calendar helpers (days since 1970-01-01).
//
// Used by the TPC-H substrate: DATE columns are stored as int32 day numbers
// so that interval arithmetic (e.g. l_shipdate <= '1998-12-01' - 90 days) is
// plain integer math. The civil/day conversions use Howard Hinnant's
// algorithms.
#ifndef ADICT_UTIL_DATE_H_
#define ADICT_UTIL_DATE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "util/check.h"

namespace adict {

/// Days since 1970-01-01 for a civil date (valid far beyond TPC-H's range).
constexpr int32_t DaysFromCivil(int y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097 + static_cast<int32_t>(doe) - 719468;
}

/// Civil date from days since 1970-01-01.
struct CivilDate {
  int year;
  unsigned month;
  unsigned day;
};

constexpr CivilDate CivilFromDays(int32_t z) {
  z += 719468;
  const int era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);       // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int y = static_cast<int>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);       // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                            // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;                    // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                         // [1, 12]
  return {y + (m <= 2), m, d};
}

/// Parses "YYYY-MM-DD" into days since epoch.
inline int32_t ParseDate(std::string_view s) {
  ADICT_CHECK_MSG(s.size() == 10 && s[4] == '-' && s[7] == '-',
                  "date must be YYYY-MM-DD");
  auto digits = [&s](int pos, int len) {
    int v = 0;
    for (int i = 0; i < len; ++i) v = v * 10 + (s[pos + i] - '0');
    return v;
  };
  return DaysFromCivil(digits(0, 4), digits(5, 2), digits(8, 2));
}

/// Formats days since epoch as "YYYY-MM-DD".
inline std::string FormatDate(int32_t days) {
  const CivilDate c = CivilFromDays(days);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02u-%02u", c.year, c.month, c.day);
  return buf;
}

/// Adds `months` calendar months, clamping the day into the target month.
int32_t AddMonths(int32_t days, int months);

}  // namespace adict

#endif  // ADICT_UTIL_DATE_H_
