#include "util/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace adict {

StatusOr<ListenSocket> OpenListenSocket(const ListenOptions& options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::IoError("invalid bind address: " + options.bind_address);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status =
        Status::IoError(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, options.backlog) != 0) {
    const Status status =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }

  ListenSocket socket;
  socket.fd = fd;
  socket.port = options.port;
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    socket.port = ntohs(bound.sin_port);
  }
  return socket;
}

int AcceptWithTimeout(int listen_fd, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = listen_fd;
  pfd.events = POLLIN;
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0) return -1;  // timeout or EINTR
  return ::accept(listen_fd, nullptr, nullptr);
}

bool SendAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) return false;
    data.remove_prefix(static_cast<size_t>(n));
  }
  return true;
}

RecvResult RecvExact(int fd, void* buf, size_t len,
                     const std::atomic<bool>* stop, int idle_timeout_ms) {
  // Poll in 100 ms slices: long enough to be cheap, short enough that a
  // server Stop() drains its connection threads promptly.
  constexpr int kSliceMs = 100;
  size_t got = 0;
  int idle_ms = 0;
  while (got < len) {
    if (stop != nullptr && stop->load(std::memory_order_acquire)) {
      return RecvResult::kStopped;
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kSliceMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return RecvResult::kError;
    }
    if (ready == 0) {
      idle_ms += kSliceMs;
      if (idle_timeout_ms > 0 && idle_ms >= idle_timeout_ms) {
        return RecvResult::kTimeout;
      }
      continue;
    }
    const ssize_t n =
        ::recv(fd, static_cast<char*>(buf) + got, len - got, 0);
    if (n == 0) {
      return got == 0 ? RecvResult::kClosed : RecvResult::kTruncated;
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return got == 0 ? RecvResult::kError : RecvResult::kTruncated;
    }
    got += static_cast<size_t>(n);
    idle_ms = 0;
  }
  return RecvResult::kOk;
}

}  // namespace adict
