// LEB128-style variable-length integer encoding.
//
// Used by the inline front coding dictionary, which interleaves prefix and
// suffix lengths with the string data.
#ifndef ADICT_UTIL_VARINT_H_
#define ADICT_UTIL_VARINT_H_

#include <cstdint>
#include <vector>

namespace adict {

/// Appends `value` to `out` as a little-endian base-128 varint.
inline void PutVarint(std::vector<uint8_t>* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

/// Reads a varint from `data` at `*pos`, advancing `*pos` past it.
inline uint64_t GetVarint(const uint8_t* data, size_t* pos) {
  uint64_t value = 0;
  int shift = 0;
  while (true) {
    const uint8_t byte = data[(*pos)++];
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return value;
}

/// Number of bytes PutVarint would use for `value`.
inline size_t VarintLength(uint64_t value) {
  size_t len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

}  // namespace adict

#endif  // ADICT_UTIL_VARINT_H_
