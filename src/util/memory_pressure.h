// Real memory-pressure measurement: pluggable providers and a background
// sampler thread.
//
// The paper's feedback controller adjusts the trade-off parameter c from
// *simulated* free memory. This layer closes the loop on a machine that is
// genuinely running out of memory: a MemoryProvider measures (used, total)
// bytes from the environment —
//
//   CgroupV2Provider   memory.current / memory.max of the process's cgroup
//                      (the container path; a real limit, not machine RAM)
//   ProcRssProvider    VmRSS from /proc/self/statm against MemTotal from
//                      /proc/meminfo (the bare-metal path)
//   SimulatedProvider  a deterministic, test-settable budget (tests, CI,
//                      and the performance-over-available-memory bench)
//
// — and a MemorySampler polls the provider on a background thread at a
// configurable period (ADICT_MEM_POLL_MS), handing every result to a
// callback. The callback side (core/recompression_scheduler.{h,cc}) feeds
// TradeoffController::Observe and drives pressure-triggered rebuilds; this
// layer stays observability-free like util/thread_pool — the consumer
// mirrors `mem.*` metrics from the samples it receives
// (docs/memory_pressure.md).
//
// A provider read can fail at any time — a cgroup file disappears mid
// teardown, /proc is unreadable in a sandbox — so Sample() returns
// StatusOr and the sampler keeps running through errors (chaos-tested via
// the `mem.sample.fail` fail point). Thread safety: providers are called
// only from the sampler thread (or the owner before Start()); the
// SimulatedProvider's setters are atomic so tests can move the budget while
// the sampler runs.
#ifndef ADICT_UTIL_MEMORY_PRESSURE_H_
#define ADICT_UTIL_MEMORY_PRESSURE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>

#include "util/lock_rank.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace adict {

/// One measurement of the process's memory environment, in bytes.
struct MemorySample {
  uint64_t used_bytes = 0;
  uint64_t total_bytes = 0;

  /// used / total in [0, 1]; 0 when total is 0 (an unusable sample —
  /// providers reject those before returning).
  double used_fraction() const {
    return total_bytes == 0
               ? 0.0
               : static_cast<double>(used_bytes) /
                     static_cast<double>(total_bytes);
  }
  /// total - used, saturating at 0 (a cgroup can overshoot its limit).
  uint64_t free_bytes() const {
    return used_bytes >= total_bytes ? 0 : total_bytes - used_bytes;
  }
};

/// A source of memory measurements. Implementations must tolerate being
/// called repeatedly after a failure (the sampler retries every period).
class MemoryProvider {
 public:
  virtual ~MemoryProvider() = default;
  /// Stable identifier, e.g. "cgroup_v2", "proc_rss", "simulated".
  virtual std::string_view name() const = 0;
  /// One measurement. Never blocks for long (file reads, no syscall loops).
  virtual StatusOr<MemorySample> Sample() = 0;
};

/// cgroup v2: `memory.current` against `memory.max` under
/// /sys/fs/cgroup<path from /proc/self/cgroup>. Returns an error from
/// Sample() when the files are missing or `memory.max` is "max" (no limit
/// configured — fall back to ProcRssProvider). `root_override` relocates
/// /sys/fs/cgroup for tests.
std::unique_ptr<MemoryProvider> MakeCgroupV2Provider(
    std::string root_override = {});

/// Bare metal: resident set size (VmRSS) from /proc/self/statm against
/// MemTotal from /proc/meminfo. `total_override_bytes` replaces the
/// machine total with an explicit budget (useful when the store should
/// only ever use a slice of the machine).
std::unique_ptr<MemoryProvider> MakeProcRssProvider(
    uint64_t total_override_bytes = 0);

/// Best real provider for this environment: cgroup v2 when a limit is
/// configured, /proc RSS otherwise. Never returns null (the /proc provider
/// exists on any Linux; on exotic systems its Sample() just fails and the
/// sampler reports the error).
std::unique_ptr<MemoryProvider> DetectMemoryProvider();

/// Deterministic provider for tests and benches: reports exactly what the
/// test set, atomically settable while a sampler polls it.
class SimulatedProvider : public MemoryProvider {
 public:
  SimulatedProvider(uint64_t used_bytes, uint64_t total_bytes)
      : used_bytes_(used_bytes), total_bytes_(total_bytes) {}

  std::string_view name() const override { return "simulated"; }
  StatusOr<MemorySample> Sample() override;

  void set_used_bytes(uint64_t bytes) {
    used_bytes_.store(bytes, std::memory_order_relaxed);
  }
  void set_total_bytes(uint64_t bytes) {
    total_bytes_.store(bytes, std::memory_order_relaxed);
  }
  /// Convenience for shrinking-budget sweeps: keeps used, moves total.
  uint64_t total_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> used_bytes_;
  std::atomic<uint64_t> total_bytes_;
};

/// Parsers behind the real providers, exposed for tests (they never touch
/// the filesystem). Each returns an error on malformed input.
StatusOr<uint64_t> ParseCgroupBytes(std::string_view content);
StatusOr<std::string> ParseCgroupSelfPath(std::string_view proc_self_cgroup);
StatusOr<uint64_t> ParseStatmRssBytes(std::string_view statm,
                                      uint64_t page_bytes);
StatusOr<uint64_t> ParseMemInfoTotalBytes(std::string_view meminfo);

/// ADICT_MEM_POLL_MS semantics: unset/empty/"0" -> the built-in default
/// (250 ms), otherwise the parsed value clamped to [10, 60000].
uint64_t DefaultMemPollMillis();

/// Background sampler: polls one provider at a fixed period and hands every
/// result — success or failure — to the callback, from the sampler thread.
/// The `mem.sample.fail` fail point injects provider errors upstream of the
/// callback so chaos tests can prove consumers ride through them. Start()
/// samples once immediately (consumers see a measurement before the first
/// period elapses); Stop() wakes and joins the thread and is safe to call
/// twice or without Start(). The destructor stops.
class MemorySampler {
 public:
  using Callback = std::function<void(const StatusOr<MemorySample>&)>;

  struct Options {
    /// Poll period; 0 means DefaultMemPollMillis() (ADICT_MEM_POLL_MS).
    uint64_t period_millis = 0;
  };

  MemorySampler(std::unique_ptr<MemoryProvider> provider, Callback callback,
                Options options);
  // Overload instead of a defaulted Options argument: GCC rejects an
  // in-class `= Options()` default before the nested struct's NSDMIs are
  // complete.
  MemorySampler(std::unique_ptr<MemoryProvider> provider, Callback callback)
      : MemorySampler(std::move(provider), std::move(callback), Options()) {}
  ~MemorySampler();
  MemorySampler(const MemorySampler&) = delete;
  MemorySampler& operator=(const MemorySampler&) = delete;

  void Start();
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Samples once synchronously on the calling thread (same path as the
  /// background tick, including the fail point and the callback). Lets
  /// tests and benches drive a deterministic number of ticks with no
  /// thread.
  void SampleNow();

  uint64_t period_millis() const { return period_millis_; }
  std::string_view provider_name() const { return provider_->name(); }

  /// Lifetime tallies, readable from any thread.
  uint64_t num_samples() const {
    return num_samples_.load(std::memory_order_relaxed);
  }
  uint64_t num_errors() const {
    return num_errors_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();
  void Tick();

  std::unique_ptr<MemoryProvider> provider_;
  Callback callback_;
  uint64_t period_millis_;

  // Sleep/wake plumbing, same shape as ThreadPool's: the cv only parks the
  // loop between polls; Stop() flips the flag under the lock and wakes it.
  MutexCv wake_mutex_{LockRank::kSamplerWake, "MemorySampler.wake_mutex_"};
  bool stop_requested_ ADICT_GUARDED_BY(wake_mutex_) = false;
  std::atomic<bool> running_{false};
  std::thread thread_;

  std::atomic<uint64_t> num_samples_{0};
  std::atomic<uint64_t> num_errors_{0};
};

}  // namespace adict

#endif  // ADICT_UTIL_MEMORY_PRESSURE_H_
