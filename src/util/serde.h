// Minimal binary serialization primitives: little-endian, length-prefixed,
// bounds-checked. Used for dictionary persistence.
#ifndef ADICT_UTIL_SERDE_H_
#define ADICT_UTIL_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "util/check.h"

namespace adict {

/// Append-only byte sink.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<uint8_t>* out) : out_(out) {}

  template <typename T>
  void Write(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t offset = out_->size();
    out_->resize(offset + sizeof(T));
    std::memcpy(out_->data() + offset, &value, sizeof(T));
  }

  void WriteBytes(const void* data, size_t size) {
    const size_t offset = out_->size();
    out_->resize(offset + size);
    std::memcpy(out_->data() + offset, data, size);
  }

  /// u64 length prefix + elements.
  template <typename T>
  void WriteVector(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    Write<uint64_t>(values.size());
    WriteBytes(values.data(), values.size() * sizeof(T));
  }

  void WriteString(const std::string& s) {
    Write<uint64_t>(s.size());
    WriteBytes(s.data(), s.size());
  }

 private:
  std::vector<uint8_t>* out_;
};

/// Bounds-checked byte source.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  T Read() {
    static_assert(std::is_trivially_copyable_v<T>);
    ADICT_CHECK_MSG(pos_ + sizeof(T) <= size_, "serialized data truncated");
    T value;
    std::memcpy(&value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  void ReadBytes(void* out, size_t size) {
    ADICT_CHECK_MSG(pos_ + size <= size_, "serialized data truncated");
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
  }

  template <typename T>
  std::vector<T> ReadVector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const uint64_t count = Read<uint64_t>();
    ADICT_CHECK_MSG(pos_ + count * sizeof(T) <= size_,
                    "serialized data truncated");
    std::vector<T> values(count);
    ReadBytes(values.data(), count * sizeof(T));
    return values;
  }

  std::string ReadString() {
    const uint64_t count = Read<uint64_t>();
    std::string s(count, '\0');
    ReadBytes(s.data(), count);
    return s;
  }

  size_t position() const { return pos_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace adict

#endif  // ADICT_UTIL_SERDE_H_
