// Minimal binary serialization primitives: little-endian, length-prefixed,
// bounds-checked. Used for dictionary persistence.
//
// ByteReader has two overrun policies. The default (kAbort) treats an
// overrun as a programming error and aborts, which is right for trusted
// in-process buffers. kRecord is for untrusted images read back from disk:
// an overrun marks the reader failed, every subsequent read returns
// zero-valued data, and the caller checks ok() once at the end — corrupt
// bytes can never take the process down (docs/robustness.md).
#ifndef ADICT_UTIL_SERDE_H_
#define ADICT_UTIL_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "util/check.h"

namespace adict {

/// Append-only byte sink.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<uint8_t>* out) : out_(out) {}

  template <typename T>
  void Write(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t offset = out_->size();
    out_->resize(offset + sizeof(T));
    std::memcpy(out_->data() + offset, &value, sizeof(T));
  }

  void WriteBytes(const void* data, size_t size) {
    if (size == 0) return;  // empty vectors/strings have a null data()
    const size_t offset = out_->size();
    out_->resize(offset + size);
    std::memcpy(out_->data() + offset, data, size);
  }

  /// u64 length prefix + elements.
  template <typename T>
  void WriteVector(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    Write<uint64_t>(values.size());
    WriteBytes(values.data(), values.size() * sizeof(T));
  }

  void WriteString(const std::string& s) {
    Write<uint64_t>(s.size());
    WriteBytes(s.data(), s.size());
  }

 private:
  std::vector<uint8_t>* out_;
};

/// Bounds-checked byte source.
class ByteReader {
 public:
  /// Overrun policy: abort the process (trusted data, programming error) or
  /// record the failure and keep returning zeroes (untrusted data).
  enum class OnError { kAbort, kRecord };

  ByteReader(const uint8_t* data, size_t size,
             OnError on_error = OnError::kAbort)
      : data_(data), size_(size), on_error_(on_error) {}

  template <typename T>
  T Read() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (failed_ || sizeof(T) > size_ - pos_) {
      Fail("serialized data truncated");
      return T{};
    }
    T value;
    std::memcpy(&value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  void ReadBytes(void* out, size_t size) {
    if (size == 0) return;  // empty reads have null destinations
    if (failed_ || size > size_ - pos_) {
      Fail("serialized data truncated");
      std::memset(out, 0, size);
      return;
    }
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
  }

  template <typename T>
  std::vector<T> ReadVector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const uint64_t count = Read<uint64_t>();
    // Divide, don't multiply: count * sizeof(T) can wrap uint64 and sneak a
    // huge allocation past the bound.
    if (failed_ || count > (size_ - pos_) / sizeof(T)) {
      Fail("serialized data truncated");
      return {};
    }
    std::vector<T> values(count);
    ReadBytes(values.data(), count * sizeof(T));
    return values;
  }

  std::string ReadString() {
    const uint64_t count = Read<uint64_t>();
    if (failed_ || count > size_ - pos_) {
      Fail("serialized data truncated");
      return {};
    }
    std::string s(count, '\0');
    ReadBytes(s.data(), count);
    return s;
  }

  /// Marks the reader failed (kRecord) or aborts (kAbort). Deserializers
  /// call this for structural invariant violations so that corrupt images
  /// are reported through the same channel as overruns.
  void Fail(const char* msg) {
    if (on_error_ == OnError::kAbort) {
      ADICT_CHECK_MSG(false, msg);
    }
    failed_ = true;
    pos_ = size_;  // fail fast: every later read overruns immediately
  }

  /// True once any read overran or Fail() was called (kRecord mode only;
  /// kAbort never survives a failure).
  bool failed() const { return failed_; }
  bool ok() const { return !failed_; }

  size_t position() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

  /// Pointer to the next unread byte.
  const uint8_t* cursor() const { return data_ + pos_; }

  /// Advances past `size` bytes (bounds-checked like a read).
  void Skip(size_t size) {
    if (failed_ || size > size_ - pos_) {
      Fail("serialized data truncated");
      return;
    }
    pos_ += size;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  OnError on_error_ = OnError::kAbort;
  bool failed_ = false;
};

}  // namespace adict

#endif  // ADICT_UTIL_SERDE_H_
