#include "util/date.h"

namespace adict {
namespace {

bool IsLeap(int y) { return y % 4 == 0 && (y % 100 != 0 || y % 400 == 0); }

unsigned DaysInMonth(int y, unsigned m) {
  static constexpr unsigned kDays[] = {31, 28, 31, 30, 31, 30,
                                       31, 31, 30, 31, 30, 31};
  return m == 2 && IsLeap(y) ? 29 : kDays[m - 1];
}

}  // namespace

int32_t AddMonths(int32_t days, int months) {
  CivilDate c = CivilFromDays(days);
  int month_index = c.year * 12 + static_cast<int>(c.month) - 1 + months;
  const int year = month_index >= 0 ? month_index / 12 : (month_index - 11) / 12;
  const unsigned month = static_cast<unsigned>(month_index - year * 12) + 1;
  const unsigned day =
      c.day <= DaysInMonth(year, month) ? c.day : DaysInMonth(year, month);
  return DaysFromCivil(year, month, day);
}

}  // namespace adict
