// Zipf-distributed sampling.
//
// Used to synthesize the column populations behind Figures 1 and 2 of the
// paper (dictionary sizes in real systems roughly follow a Zipf law) and to
// skew token frequencies in the synthetic survey data sets.
#ifndef ADICT_UTIL_ZIPF_H_
#define ADICT_UTIL_ZIPF_H_

#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace adict {

/// Samples ranks in [0, n) with probability proportional to 1 / (rank+1)^s.
///
/// Uses a precomputed cumulative table and binary search, which is exact and
/// fast enough for the population sizes used here.
class ZipfDistribution {
 public:
  ZipfDistribution(uint64_t n, double s) : cdf_(n) {
    ADICT_CHECK(n > 0);
    double sum = 0.0;
    for (uint64_t i = 0; i < n; ++i) {
      sum += 1.0 / Pow(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (uint64_t i = 0; i < n; ++i) cdf_[i] /= sum;
  }

  /// Draws one rank.
  uint64_t Sample(Rng* rng) const {
    const double u = rng->NextDouble();
    // Binary search for the first cdf entry >= u.
    uint64_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const uint64_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  static double Pow(double base, double exp);

  std::vector<double> cdf_;
};

}  // namespace adict

#endif  // ADICT_UTIL_ZIPF_H_
