#include "util/lock_rank.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <utility>

namespace adict {

std::string_view LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kPoolForState:
      return "kPoolForState";
    case LockRank::kPoolWorker:
      return "kPoolWorker";
    case LockRank::kPoolWake:
      return "kPoolWake";
    case LockRank::kSamplerWake:
      return "kSamplerWake";
    case LockRank::kFailpointRegistry:
      return "kFailpointRegistry";
    case LockRank::kPoolRegistry:
      return "kPoolRegistry";
    case LockRank::kColumnVersion:
      return "kColumnVersion";
    case LockRank::kController:
      return "kController";
    case LockRank::kSchedulerDrain:
      return "kSchedulerDrain";
    case LockRank::kSchedulerState:
      return "kSchedulerState";
    case LockRank::kMetricsRegistry:
      return "kMetricsRegistry";
    case LockRank::kTraceBuffers:
      return "kTraceBuffers";
    case LockRank::kDecisionLog:
      return "kDecisionLog";
    case LockRank::kColumnHeatDecay:
      return "kColumnHeatDecay";
    case LockRank::kProfilerState:
      return "kProfilerState";
    case LockRank::kExporterDrain:
      return "kExporterDrain";
    case LockRank::kResultCache:
      return "kResultCache";
    case LockRank::kServerDrain:
      return "kServerDrain";
  }
  return "(unknown rank)";
}

std::string_view LockStratumName(LockStratum stratum) {
  switch (stratum) {
    case LockStratum::kUtil:
      return "util";
    case LockStratum::kStore:
      return "store";
    case LockStratum::kCore:
      return "core";
    case LockStratum::kObs:
      return "obs";
    case LockStratum::kServer:
      return "server";
  }
  return "(unknown stratum)";
}

namespace lockdebug {
namespace {

// The detector's own state uses raw std::mutex by necessity (an annotated,
// ranked Mutex would recurse into the detector); this file and
// thread_annotations.h are the lint's only sanctioned raw-mutex sites.

struct Graph {
  std::mutex mutex;
  // Directed rank-order edges: first.first was held while first.second was
  // acquired. The value is the held stack at the first time the edge was
  // seen — the evidence printed when the reverse order shows up later.
  std::map<std::pair<int, int>, std::string> edges;
  std::function<void(const std::string&)> handler;
};

Graph& TheGraph() {
  static Graph* graph = new Graph();  // never destroyed
  return *graph;
}

std::vector<HeldLock>& ThreadStack() {
  thread_local std::vector<HeldLock> stack;
  return stack;
}

std::string DescribeLock(LockRank rank, const char* name) {
  std::ostringstream out;
  out << "\"" << name << "\" (rank " << static_cast<int>(rank) << ", "
      << LockStratumName(LockRankStratum(rank)) << "/"
      << LockRankName(rank) << ")";
  return out.str();
}

std::string DescribeStack(const std::vector<HeldLock>& stack) {
  std::ostringstream out;
  for (const HeldLock& held : stack) {
    out << "    " << DescribeLock(held.rank, held.name) << "\n";
  }
  return out.str();
}

/// DFS over the recorded edges: is there a path from -> to? Fills `path`
/// with the rank sequence when found.
bool FindPath(const std::map<std::pair<int, int>, std::string>& edges,
              int from, int to, std::set<int>* visited,
              std::vector<int>* path) {
  if (!visited->insert(from).second) return false;
  path->push_back(from);
  if (from == to) return true;
  for (const auto& [edge, stack] : edges) {
    if (edge.first != from) continue;
    if (FindPath(edges, edge.second, to, visited, path)) return true;
  }
  path->pop_back();
  return false;
}

void ReportViolation(const std::string& message) {
  std::function<void(const std::string&)> handler;
  {
    std::lock_guard<std::mutex> lock(TheGraph().mutex);
    handler = TheGraph().handler;
  }
  if (handler) {
    handler(message);
    return;
  }
  std::fprintf(stderr, "%s", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void OnAcquire(LockRank rank, const char* name) {
  std::vector<HeldLock>& stack = ThreadStack();
  if (stack.empty()) {
    stack.push_back({rank, name});
    return;
  }

  const HeldLock* lowest = &stack.front();
  for (const HeldLock& held : stack) {
    if (static_cast<int>(held.rank) < static_cast<int>(lowest->rank)) {
      lowest = &held;
    }
  }

  const bool ok = static_cast<int>(rank) < static_cast<int>(lowest->rank);
  std::string violation;
  if (!ok) {
    std::ostringstream out;
    out << "[adict lock-rank] acquisition order violation: acquiring "
        << DescribeLock(rank, name) << " while holding "
        << DescribeLock(lowest->rank, lowest->name)
        << "; lock ranks must strictly decrease "
           "(see docs/lock_hierarchy.md)\n"
        << "  held by this thread, outermost first:\n"
        << DescribeStack(stack);
    // If the reverse order was already established somewhere, this is a
    // genuine lock-order cycle: print the recorded acquisition as well, so
    // both offending stacks are in the report.
    std::lock_guard<std::mutex> lock(TheGraph().mutex);
    for (const HeldLock& held : stack) {
      std::set<int> visited;
      std::vector<int> path;
      if (!FindPath(TheGraph().edges, static_cast<int>(rank),
                    static_cast<int>(held.rank), &visited, &path)) {
        continue;
      }
      out << "  lock-order cycle: ";
      for (int r : path) {
        out << LockRankName(static_cast<LockRank>(r)) << " -> ";
      }
      out << LockRankName(rank) << "\n";
      const auto edge = TheGraph().edges.find(
          {static_cast<int>(path[0]), static_cast<int>(path[1])});
      if (edge != TheGraph().edges.end()) {
        out << "  the opposite order was first established while "
               "holding:\n"
            << edge->second;
      }
      break;
    }
    violation = out.str();
  } else {
    // Legal acquisition: record held -> new edges with this thread's stack
    // as evidence for any future reverse-order report.
    std::lock_guard<std::mutex> lock(TheGraph().mutex);
    for (const HeldLock& held : stack) {
      const std::pair<int, int> key{static_cast<int>(held.rank),
                                    static_cast<int>(rank)};
      if (TheGraph().edges.find(key) == TheGraph().edges.end()) {
        std::ostringstream evidence;
        evidence << DescribeStack(stack) << "    ... then acquired "
                 << DescribeLock(rank, name) << "\n";
        TheGraph().edges.emplace(key, evidence.str());
      }
    }
  }

  // Push before reporting so a handler that keeps running (tests) leaves
  // the stack balanced for the matching OnRelease.
  stack.push_back({rank, name});
  if (!violation.empty()) ReportViolation(violation);
}

void OnRelease(LockRank rank, const char* name) {
  (void)name;
  std::vector<HeldLock>& stack = ThreadStack();
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->rank == rank) {
      stack.erase(std::next(it).base());
      return;
    }
  }
}

std::vector<HeldLock> HeldByThisThread() { return ThreadStack(); }

void SetViolationHandlerForTest(
    std::function<void(const std::string&)> handler) {
  std::lock_guard<std::mutex> lock(TheGraph().mutex);
  TheGraph().handler = std::move(handler);
}

void ResetForTest() {
  {
    std::lock_guard<std::mutex> lock(TheGraph().mutex);
    TheGraph().edges.clear();
  }
  ThreadStack().clear();
}

}  // namespace lockdebug
}  // namespace adict
