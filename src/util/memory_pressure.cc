#include "util/memory_pressure.h"

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "util/failpoint.h"

namespace adict {
namespace {

StatusOr<std::string> ReadSmallFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);
  return content;
}

std::string_view TrimAscii(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

StatusOr<uint64_t> ParseUint(std::string_view s) {
  s = TrimAscii(s);
  if (s.empty()) return Status::Corruption("empty number");
  uint64_t value = 0;
  for (char ch : s) {
    if (ch < '0' || ch > '9') {
      return Status::Corruption("non-numeric byte in number: " +
                                std::string(s));
    }
    const uint64_t digit = static_cast<uint64_t>(ch - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return Status::Corruption("number overflows uint64: " + std::string(s));
    }
    value = value * 10 + digit;
  }
  return value;
}

}  // namespace

StatusOr<uint64_t> ParseCgroupBytes(std::string_view content) {
  const std::string_view trimmed = TrimAscii(content);
  if (trimmed == "max") {
    return Status::FailedPrecondition("cgroup memory.max is \"max\" (no "
                                      "limit configured)");
  }
  return ParseUint(trimmed);
}

StatusOr<std::string> ParseCgroupSelfPath(std::string_view proc_self_cgroup) {
  // cgroup v2 is the single unified line "0::<path>". Hybrid hierarchies
  // list v1 controllers first; only the v2 line starts with "0::".
  size_t pos = 0;
  while (pos < proc_self_cgroup.size()) {
    size_t end = proc_self_cgroup.find('\n', pos);
    if (end == std::string_view::npos) end = proc_self_cgroup.size();
    const std::string_view line = proc_self_cgroup.substr(pos, end - pos);
    if (line.rfind("0::", 0) == 0) {
      return std::string(TrimAscii(line.substr(3)));
    }
    pos = end + 1;
  }
  return Status::FailedPrecondition("no cgroup v2 entry in /proc/self/cgroup");
}

StatusOr<uint64_t> ParseStatmRssBytes(std::string_view statm,
                                      uint64_t page_bytes) {
  // /proc/self/statm: "size resident shared text lib data dt" in pages.
  const std::string_view trimmed = TrimAscii(statm);
  const size_t first_space = trimmed.find(' ');
  if (first_space == std::string_view::npos) {
    return Status::Corruption("statm has no resident field");
  }
  std::string_view rest = trimmed.substr(first_space + 1);
  const size_t second_space = rest.find(' ');
  if (second_space != std::string_view::npos) rest = rest.substr(0, second_space);
  StatusOr<uint64_t> pages = ParseUint(rest);
  if (!pages.ok()) return pages.status();
  return *pages * page_bytes;
}

StatusOr<uint64_t> ParseMemInfoTotalBytes(std::string_view meminfo) {
  // /proc/meminfo: "MemTotal:       16319840 kB".
  size_t pos = 0;
  while (pos < meminfo.size()) {
    size_t end = meminfo.find('\n', pos);
    if (end == std::string_view::npos) end = meminfo.size();
    const std::string_view line = meminfo.substr(pos, end - pos);
    if (line.rfind("MemTotal:", 0) == 0) {
      std::string_view value = TrimAscii(line.substr(9));
      const size_t unit = value.find(' ');
      if (unit == std::string_view::npos) {
        return Status::Corruption("MemTotal line has no unit");
      }
      StatusOr<uint64_t> kb = ParseUint(value.substr(0, unit));
      if (!kb.ok()) return kb.status();
      return *kb * 1024;
    }
    pos = end + 1;
  }
  return Status::Corruption("no MemTotal line in /proc/meminfo");
}

namespace {

class CgroupV2Provider : public MemoryProvider {
 public:
  explicit CgroupV2Provider(std::string root)
      : root_(root.empty() ? "/sys/fs/cgroup" : std::move(root)) {}

  std::string_view name() const override { return "cgroup_v2"; }

  StatusOr<MemorySample> Sample() override {
    if (dir_.empty()) {
      StatusOr<std::string> self = ReadSmallFile("/proc/self/cgroup");
      if (!self.ok()) return self.status();
      StatusOr<std::string> path = ParseCgroupSelfPath(*self);
      if (!path.ok()) return path.status();
      dir_ = root_ + *path;
    }
    StatusOr<std::string> current = ReadSmallFile(dir_ + "/memory.current");
    if (!current.ok()) return current.status();
    StatusOr<uint64_t> used = ParseUint(TrimAscii(*current));
    if (!used.ok()) return used.status();
    // The nearest configured limit may sit on an ancestor; memory.max of
    // the leaf is the common case and good enough for a pressure signal.
    StatusOr<std::string> max = ReadSmallFile(dir_ + "/memory.max");
    if (!max.ok()) return max.status();
    StatusOr<uint64_t> total = ParseCgroupBytes(*max);
    if (!total.ok()) return total.status();
    if (*total == 0) return Status::Corruption("cgroup memory.max is 0");
    return MemorySample{*used, *total};
  }

 private:
  std::string root_;
  std::string dir_;  // resolved lazily on first Sample()
};

class ProcRssProvider : public MemoryProvider {
 public:
  explicit ProcRssProvider(uint64_t total_override_bytes)
      : total_override_bytes_(total_override_bytes),
        page_bytes_(static_cast<uint64_t>(sysconf(_SC_PAGESIZE))) {}

  std::string_view name() const override { return "proc_rss"; }

  StatusOr<MemorySample> Sample() override {
    StatusOr<std::string> statm = ReadSmallFile("/proc/self/statm");
    if (!statm.ok()) return statm.status();
    StatusOr<uint64_t> used = ParseStatmRssBytes(*statm, page_bytes_);
    if (!used.ok()) return used.status();
    uint64_t total = total_override_bytes_;
    if (total == 0) {
      StatusOr<std::string> meminfo = ReadSmallFile("/proc/meminfo");
      if (!meminfo.ok()) return meminfo.status();
      StatusOr<uint64_t> machine = ParseMemInfoTotalBytes(*meminfo);
      if (!machine.ok()) return machine.status();
      total = *machine;
    }
    if (total == 0) return Status::Corruption("total memory is 0");
    return MemorySample{*used, total};
  }

 private:
  uint64_t total_override_bytes_;
  uint64_t page_bytes_;
};

}  // namespace

std::unique_ptr<MemoryProvider> MakeCgroupV2Provider(
    std::string root_override) {
  return std::make_unique<CgroupV2Provider>(std::move(root_override));
}

std::unique_ptr<MemoryProvider> MakeProcRssProvider(
    uint64_t total_override_bytes) {
  return std::make_unique<ProcRssProvider>(total_override_bytes);
}

std::unique_ptr<MemoryProvider> DetectMemoryProvider() {
  auto cgroup = MakeCgroupV2Provider();
  if (cgroup->Sample().ok()) return cgroup;
  return MakeProcRssProvider();
}

StatusOr<MemorySample> SimulatedProvider::Sample() {
  const uint64_t total = total_bytes_.load(std::memory_order_relaxed);
  if (total == 0) return Status::Corruption("simulated total is 0");
  return MemorySample{used_bytes_.load(std::memory_order_relaxed), total};
}

uint64_t DefaultMemPollMillis() {
  constexpr uint64_t kDefault = 250;
  const char* env = std::getenv("ADICT_MEM_POLL_MS");
  if (env == nullptr || *env == '\0') return kDefault;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 10);
  if (end == env || parsed == 0) return kDefault;
  return std::clamp<uint64_t>(parsed, 10, 60000);
}

MemorySampler::MemorySampler(std::unique_ptr<MemoryProvider> provider,
                             Callback callback, Options options)
    : provider_(std::move(provider)),
      callback_(std::move(callback)),
      period_millis_(options.period_millis == 0 ? DefaultMemPollMillis()
                                                : options.period_millis) {}

MemorySampler::~MemorySampler() { Stop(); }

void MemorySampler::Start() {
  if (running_.load(std::memory_order_acquire)) return;
  {
    MutexLock lock(&wake_mutex_);
    stop_requested_ = false;
  }
  running_.store(true, std::memory_order_release);
  // First measurement on the caller's thread: consumers (the scheduler, the
  // controller) have a reading before Start() returns, not one period later.
  Tick();
  thread_ = std::thread([this] { Loop(); });
}

void MemorySampler::Stop() {
  {
    MutexLock lock(&wake_mutex_);
    stop_requested_ = true;
  }
  wake_mutex_.NotifyAll();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

void MemorySampler::SampleNow() { Tick(); }

void MemorySampler::Loop() {
  for (;;) {
    {
      MutexLock lock(&wake_mutex_);
      if (wake_mutex_.AwaitFor(std::chrono::milliseconds(period_millis_),
                               [this]() ADICT_CV_PREDICATE {
                                 // stop_requested_ is guarded by
                                 // wake_mutex_, held via AwaitFor.
                                 return stop_requested_;
                               })) {
        return;
      }
    }
    Tick();
  }
}

void MemorySampler::Tick() {
  StatusOr<MemorySample> sample =
      ADICT_FAIL_POINT("mem.sample.fail")
          ? StatusOr<MemorySample>(
                Status::IoError("injected mem.sample.fail failure"))
          : provider_->Sample();
  num_samples_.fetch_add(1, std::memory_order_relaxed);
  if (!sample.ok()) num_errors_.fetch_add(1, std::memory_order_relaxed);
  if (callback_) callback_(sample);
}

}  // namespace adict
