#include "util/failpoint.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>

#include "util/thread_annotations.h"

namespace adict {
namespace failpoint {
namespace {

struct PointState {
  Spec spec;
  uint64_t hits = 0;
};

class Registry {
 public:
  static Registry& Instance() {
    static Registry* instance = new Registry();  // never destroyed
    return *instance;
  }

  void Enable(std::string_view name, const Spec& spec) {
    MutexLock lock(&mutex_);
    PointState& state = points_[std::string(name)];
    state.spec = spec;
    state.hits = 0;
  }

  void Disable(std::string_view name) {
    MutexLock lock(&mutex_);
    const auto it = points_.find(std::string(name));
    if (it != points_.end()) it->second.spec = Spec::Off();
  }

  void DisableAll() {
    MutexLock lock(&mutex_);
    points_.clear();
  }

  uint64_t HitCount(std::string_view name) {
    MutexLock lock(&mutex_);
    const auto it = points_.find(std::string(name));
    return it == points_.end() ? 0 : it->second.hits;
  }

  std::vector<std::string> ActiveNames() {
    MutexLock lock(&mutex_);
    std::vector<std::string> names;
    for (const auto& [name, state] : points_) {
      if (state.spec.mode != Spec::Mode::kOff) names.push_back(name);
    }
    std::sort(names.begin(), names.end());
    return names;
  }

  void SetSeed(uint64_t seed) {
    MutexLock lock(&mutex_);
    rng_state_ = seed != 0 ? seed : 1;
  }

  bool ShouldFail(std::string_view name) {
    MutexLock lock(&mutex_);
    PointState& state = points_[std::string(name)];
    const uint64_t hit = ++state.hits;
    switch (state.spec.mode) {
      case Spec::Mode::kOff:
        return false;
      case Spec::Mode::kAlways:
        return true;
      case Spec::Mode::kNth:
        return hit == state.spec.n;
      case Spec::Mode::kFirst:
        return hit <= state.spec.n;
      case Spec::Mode::kProb:
        return NextUniform() < state.spec.probability;
    }
    return false;
  }

 private:
  Registry() {
    MutexLock lock(&mutex_);
    LoadFromEnv();
  }

  // splitmix64: deterministic, seedable, no <random> heft.
  double NextUniform() ADICT_REQUIRES(mutex_) {
    rng_state_ += 0x9E3779B97F4A7C15ull;
    uint64_t z = rng_state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * 0x1.0p-53;
  }

  void LoadFromEnv() ADICT_REQUIRES(mutex_) {
    const char* env = std::getenv("ADICT_FAILPOINTS");
    if (env == nullptr) return;
    std::string_view rest(env);
    while (!rest.empty()) {
      const size_t semi = rest.find(';');
      const std::string_view item = rest.substr(0, semi);
      rest = semi == std::string_view::npos ? std::string_view()
                                            : rest.substr(semi + 1);
      const size_t eq = item.find('=');
      if (eq == std::string_view::npos) continue;
      Spec spec;
      if (ParseSpec(item.substr(eq + 1), &spec)) {
        PointState& state = points_[std::string(item.substr(0, eq))];
        state.spec = spec;
        state.hits = 0;
      }
    }
  }

  Mutex mutex_{LockRank::kFailpointRegistry, "FailPointRegistry.mutex_"};
  std::unordered_map<std::string, PointState> points_ ADICT_GUARDED_BY(mutex_);
  uint64_t rng_state_ ADICT_GUARDED_BY(mutex_) = 0x5DEECE66Dull;
};

bool ParseUint(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char ch : text) {
    if (ch < '0' || ch > '9') return false;
    value = value * 10 + static_cast<uint64_t>(ch - '0');
  }
  *out = value;
  return true;
}

}  // namespace

bool ParseSpec(std::string_view text, Spec* out) {
  if (text == "off") {
    *out = Spec::Off();
    return true;
  }
  if (text == "always") {
    *out = Spec::Always();
    return true;
  }
  const size_t colon = text.find(':');
  if (colon == std::string_view::npos) return false;
  const std::string_view kind = text.substr(0, colon);
  const std::string_view arg = text.substr(colon + 1);
  if (kind == "nth" || kind == "first") {
    uint64_t n = 0;
    if (!ParseUint(arg, &n) || n == 0) return false;
    *out = kind == "nth" ? Spec::Nth(n) : Spec::First(n);
    return true;
  }
  if (kind == "prob") {
    char* end = nullptr;
    const std::string arg_str(arg);
    const double p = std::strtod(arg_str.c_str(), &end);
    if (end != arg_str.c_str() + arg_str.size() || p < 0.0 || p > 1.0) {
      return false;
    }
    *out = Spec::Prob(p);
    return true;
  }
  return false;
}

void Enable(std::string_view name, const Spec& spec) {
  Registry::Instance().Enable(name, spec);
}

bool EnableFromString(std::string_view assignment) {
  const size_t eq = assignment.find('=');
  if (eq == std::string_view::npos) return false;
  Spec spec;
  if (!ParseSpec(assignment.substr(eq + 1), &spec)) return false;
  Enable(assignment.substr(0, eq), spec);
  return true;
}

void Disable(std::string_view name) { Registry::Instance().Disable(name); }

void DisableAll() { Registry::Instance().DisableAll(); }

uint64_t HitCount(std::string_view name) {
  return Registry::Instance().HitCount(name);
}

std::vector<std::string> ActiveNames() {
  return Registry::Instance().ActiveNames();
}

void SetSeed(uint64_t seed) { Registry::Instance().SetSeed(seed); }

bool ShouldFail(std::string_view name) {
  return Registry::Instance().ShouldFail(name);
}

}  // namespace failpoint
}  // namespace adict
