// Lock ranks and the debug deadlock detector.
//
// The thread-safety annotations (thread_annotations.h) prove *protection* —
// every guarded member is touched under its mutex — but say nothing about
// *ordering*: two correctly-annotated locks acquired in opposite orders on
// two threads deadlock, and TSan does not catch it. This header makes lock
// order a checked invariant, the latch-ordering discipline production
// column stores (HyPer/Hyrise-style engines) use to keep merge and scan
// paths deadlock-free.
//
// Every Mutex is constructed with a (rank, name) from the LockRank enum
// below. Ranks are grouped into strata by subsystem, ascending:
//
//   util [0,100) < store [100,200) < core [200,300) < obs [300,400)
//                                                   < server [400,500)
//
// The discipline: a thread may acquire a lock only if its rank is strictly
// below every rank it already holds. Outermost locks therefore have the
// highest ranks (the serving layer), leaves the lowest (the thread pool's
// morsel latches). Subsystem calls that go "up" the strata — e.g. emitting
// an obs metric — must happen after releasing any lower-stratum lock; see
// docs/lock_hierarchy.md for the canonical rank table and the rules.
//
// Enforcement:
//   - Debug builds (ADICT_DEADLOCK_CHECK, default-on when NDEBUG is unset)
//     keep a per-thread held-lock stack, abort on any non-decreasing
//     acquisition, and feed a global lock-order graph whose cycle detector
//     reports *both* offending acquisition stacks — the one that
//     established A -> B and the one now attempting B -> A.
//   - Release builds compile the hooks out entirely: Mutex::Lock is a bare
//     std::mutex::lock with zero added loads (stronger than the "at most
//     one relaxed load" budget the tests assert).
//   - tools/adict_lint.py's `locks` check keeps the enum, the constructed
//     ranks, and the docs/lock_hierarchy.md table in lockstep.
#ifndef ADICT_UTIL_LOCK_RANK_H_
#define ADICT_UTIL_LOCK_RANK_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

// Default: detector on exactly when asserts are on. CMake's
// ADICT_DEADLOCK_CHECK option forces it on for any build type (the
// deadlock-check CI job builds Debug with the option set explicitly).
#ifndef ADICT_DEADLOCK_CHECK
#ifdef NDEBUG
#define ADICT_DEADLOCK_CHECK 0
#else
#define ADICT_DEADLOCK_CHECK 1
#endif
#endif

namespace adict {

/// Subsystem stratum of a rank: its rank-value band divided by
/// kLockStratumWidth. The lint's `locks` check enforces that a mutex
/// declared in src/<dir>/ carries a rank from <dir>'s band.
enum class LockStratum : int {
  kUtil = 0,
  kStore = 1,
  kCore = 2,
  kObs = 3,
  kServer = 4,
};

inline constexpr int kLockStratumWidth = 100;

/// One value per mutex member in the tree (docs/lock_hierarchy.md is the
/// canonical table; adict_lint keeps code and table in sync). Within a
/// stratum, values are spaced by 10 so a new lock can slot between two
/// existing ones without renumbering.
enum class LockRank : int {
  // ---- util [0, 100): leaves — the execution substrate. ----
  kPoolForState = 10,       // one ParallelFor call's completion latch
  kPoolWorker = 20,         // a worker's own task deque
  kPoolWake = 30,           // idle-worker parking lot
  kSamplerWake = 40,        // memory sampler's poll-period parking lot
  kFailpointRegistry = 50,  // named failpoint table
  kPoolRegistry = 60,       // process-wide pool pointer (swap deletes the
                            // old pool, whose teardown takes kPoolWake)
  // ---- store [100, 200): column versions. ----
  kColumnVersion = 110,     // snapshot/epoch publish state of one column
  // ---- core [200, 300): control loops. ----
  kController = 210,        // trade-off parameter c feedback state
  kSchedulerDrain = 220,    // in-flight rebuild drain latch
  kSchedulerState = 230,    // scheduler tick/EMA/cooldown bookkeeping
  // ---- obs [300, 400): observability plane. ----
  kMetricsRegistry = 310,   // name -> instrument map (instruments are
                            // lock-free atomics once registered)
  kTraceBuffers = 320,      // tracer's thread-local buffer registry
  kDecisionLog = 330,       // decision ring buffer + accuracy accounting
  kColumnHeatDecay = 340,   // one column's decayed-heat fold state
  kProfilerState = 350,     // workload profiler's column map + rankings
  kExporterDrain = 360,     // HTTP exporter's in-flight handler latch
  // ---- server [400, 500): the serving front end — outermost. ----
  kResultCache = 410,       // epoch-invalidated result cache
  kServerDrain = 420,       // query server's open-connection latch
};

std::string_view LockRankName(LockRank rank);
std::string_view LockStratumName(LockStratum stratum);

constexpr LockStratum LockRankStratum(LockRank rank) {
  return static_cast<LockStratum>(static_cast<int>(rank) /
                                  kLockStratumWidth);
}

// The detector. The algorithm is always compiled (tests drive it directly
// in any build type); only the *wiring* into Mutex::Lock/Unlock is gated
// on ADICT_DEADLOCK_CHECK, so Release fast paths stay untouched.
namespace lockdebug {

struct HeldLock {
  LockRank rank;
  const char* name;
};

/// True when Mutex::Lock/Unlock feed the detector in this build.
constexpr bool Enabled() { return ADICT_DEADLOCK_CHECK != 0; }

/// Records an acquisition attempt by this thread. If `rank` is not
/// strictly below every held rank, reports a violation — including, when
/// the global lock-order graph already has a path rank ->* held (the
/// reverse order seen on some earlier acquisition), the full cycle with
/// both acquisition stacks — then aborts, or calls the test handler if one
/// is installed. On success (or after a handled violation) the lock is
/// pushed onto the per-thread held stack so OnRelease stays balanced.
void OnAcquire(LockRank rank, const char* name);

/// Pops the (most recent) matching entry from this thread's held stack.
void OnRelease(LockRank rank, const char* name);

/// This thread's held locks, outermost first.
std::vector<HeldLock> HeldByThisThread();

/// Routes violations to `handler` instead of aborting; pass nullptr to
/// restore the abort. Tests use this to assert on the report text.
void SetViolationHandlerForTest(std::function<void(const std::string&)> handler);

/// Clears the global lock-order graph and this thread's held stack.
void ResetForTest();

}  // namespace lockdebug
}  // namespace adict

#endif  // ADICT_UTIL_LOCK_RANK_H_
