// No-exceptions error propagation for fallible paths (persistence, guarded
// dictionary rebuilds).
//
// The library keeps ADICT_CHECK for programming errors; Status is for
// *expected* runtime failures — corrupt bytes on disk, truncated images,
// unwritable files, inputs a format cannot represent — which must never take
// the process down. Functions that can fail return Status (or StatusOr<T>
// when they produce a value); callers branch on ok() and walk a degradation
// path instead of crashing (docs/robustness.md).
#ifndef ADICT_UTIL_STATUS_H_
#define ADICT_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "util/check.h"

namespace adict {

enum class StatusCode : uint8_t {
  kOk = 0,
  kCorruption,          ///< stored bytes fail integrity or invariant checks
  kTruncated,           ///< stored bytes end before the structure does
  kUnsupportedVersion,  ///< envelope version this build cannot read
  kResourceExhausted,   ///< result would exceed a hard size/memory bound
  kFailedPrecondition,  ///< input violates a format's build preconditions
  kIoError,             ///< underlying file operation failed
  kInternal,            ///< unexpected internal failure (incl. fail points)
};

std::string_view StatusCodeName(StatusCode code);

/// Error code plus human-readable context. Cheap to move; an OK status
/// carries no message. [[nodiscard]]: silently dropping a Status turns an
/// expected failure into silent corruption, so discarding one is a
/// compile-time warning (-Werror in CI) — the adict_lint nodiscard audit
/// backstops call sites the compiler cannot see.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string_view message)
      : code_(code), message_(message) {}

  static Status Ok() { return Status(); }
  static Status Corruption(std::string_view m) {
    return Status(StatusCode::kCorruption, m);
  }
  static Status Truncated(std::string_view m) {
    return Status(StatusCode::kTruncated, m);
  }
  static Status UnsupportedVersion(std::string_view m) {
    return Status(StatusCode::kUnsupportedVersion, m);
  }
  static Status ResourceExhausted(std::string_view m) {
    return Status(StatusCode::kResourceExhausted, m);
  }
  static Status FailedPrecondition(std::string_view m) {
    return Status(StatusCode::kFailedPrecondition, m);
  }
  static Status IoError(std::string_view m) {
    return Status(StatusCode::kIoError, m);
  }
  static Status Internal(std::string_view m) {
    return Status(StatusCode::kInternal, m);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "CORRUPTION: checksum mismatch" / "OK".
  std::string ToString() const {
    std::string s(StatusCodeName(code_));
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kTruncated:
      return "TRUNCATED";
    case StatusCode::kUnsupportedVersion:
      return "UNSUPPORTED_VERSION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

/// Either a value or a non-OK Status. Accessing the value of an errored
/// StatusOr is a programming error (checked).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from an error status (must not be OK: an OK StatusOr needs a
  /// value).
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    ADICT_CHECK_MSG(!status_.ok(), "StatusOr built from OK status");
  }
  /// Implicit from a value.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    ADICT_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  const T& value() const& {
    ADICT_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    ADICT_CHECK_MSG(ok(), status_.ToString().c_str());
    return *std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define ADICT_RETURN_IF_ERROR(expr)              \
  do {                                           \
    ::adict::Status adict_status_tmp_ = (expr);  \
    if (!adict_status_tmp_.ok()) return adict_status_tmp_; \
  } while (0)

}  // namespace adict

#endif  // ADICT_UTIL_STATUS_H_
