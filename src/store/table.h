// A minimal in-memory column-store table: named, typed columns of equal row
// count. String columns are domain encoded; numeric and date columns are
// plain vectors (they are not the subject of the paper).
#ifndef ADICT_STORE_TABLE_H_
#define ADICT_STORE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "store/string_column.h"
#include "util/check.h"

namespace adict {

class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}

  // Movable, not copyable (columns can be large).
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  void AddStringColumn(const std::string& name, StringColumn column) {
    CheckRows(column.num_rows());
    // Bind the workload-profiler heat slot before the column is shared;
    // every later version inherits it through Publish.
    column.BindHeat(obs::Profiler().GetColumn(name_ + "." + name));
    string_index_[name] = string_columns_.size();
    string_columns_.push_back(
        std::make_unique<VersionedStringColumn>(std::move(column)));
    column_names_.push_back(name);
  }
  void AddInt64Column(const std::string& name, std::vector<int64_t> values) {
    CheckRows(values.size());
    int64_index_[name] = int64_columns_.size();
    int64_columns_.push_back(std::move(values));
    column_names_.push_back(name);
  }
  void AddDoubleColumn(const std::string& name, std::vector<double> values) {
    CheckRows(values.size());
    double_index_[name] = double_columns_.size();
    double_columns_.push_back(std::move(values));
    column_names_.push_back(name);
  }
  void AddDateColumn(const std::string& name, std::vector<int32_t> values) {
    CheckRows(values.size());
    date_index_[name] = date_columns_.size();
    date_columns_.push_back(std::move(values));
    column_names_.push_back(name);
  }

  // Single-writer-phase references into the current version of a column
  // (load, reconfiguration, and the single-threaded query paths). Valid
  // until the column's next Publish; concurrent readers racing a merge must
  // use SnapshotStrings() instead.
  const StringColumn& strings(const std::string& name) const {
    return string_columns_[IndexOf(string_index_, name)]->current();
  }
  StringColumn& strings(const std::string& name) {
    return string_columns_[IndexOf(string_index_, name)]->current();
  }

  /// Pinned snapshot of a string column: the reader-side of the snapshot
  /// protocol. The returned version stays valid (and bit-identical) across
  /// any concurrent PublishStrings / merge.
  std::shared_ptr<const StringColumn> SnapshotStrings(
      const std::string& name) const {
    return string_columns_[IndexOf(string_index_, name)]->Snapshot();
  }

  /// The versioned holder of a string column: snapshot + epoch access by
  /// name. The serving layer's result cache records (column, epoch) pairs
  /// through this to invalidate cached results on any publish.
  const VersionedStringColumn& versioned_strings(
      const std::string& name) const {
    return *string_columns_[IndexOf(string_index_, name)];
  }
  VersionedStringColumn& versioned_strings(const std::string& name) {
    return *string_columns_[IndexOf(string_index_, name)];
  }

  /// Publishes the next version of a string column (the writer-side commit
  /// of a delta merge or format change). Readers holding snapshots keep
  /// their old version; new snapshots see `next`.
  void PublishStrings(const std::string& name, StringColumn next) {
    string_columns_[IndexOf(string_index_, name)]->Publish(std::move(next));
  }
  const std::vector<int64_t>& int64s(const std::string& name) const {
    return int64_columns_[IndexOf(int64_index_, name)];
  }
  const std::vector<double>& doubles(const std::string& name) const {
    return double_columns_[IndexOf(double_index_, name)];
  }
  const std::vector<int32_t>& dates(const std::string& name) const {
    return date_columns_[IndexOf(date_index_, name)];
  }

  bool has_string_column(const std::string& name) const {
    return string_index_.contains(name);
  }

  /// Number of string columns; iterate with string_column(i) (e.g. for the
  /// compression manager to reconfigure).
  size_t num_string_columns() const { return string_columns_.size(); }
  /// Versioned string column `i`, in AddStringColumn order.
  VersionedStringColumn& string_column(size_t i) {
    return *string_columns_[i];
  }
  const VersionedStringColumn& string_column(size_t i) const {
    return *string_columns_[i];
  }
  /// Name of string column `i`, parallel to string_column(i).
  const std::string& string_column_name(size_t i) const {
    for (const auto& [name, index] : string_index_) {
      if (index == i) return name;
    }
    ADICT_CHECK_MSG(false, "string column index out of range");
    return name_;
  }

  const std::string& name() const { return name_; }
  uint64_t num_rows() const { return num_rows_; }

  size_t MemoryBytes() const {
    size_t bytes = 0;
    for (const auto& col : string_columns_) {
      bytes += col->current().MemoryBytes();
    }
    for (const auto& col : int64_columns_) bytes += col.size() * sizeof(int64_t);
    for (const auto& col : double_columns_) bytes += col.size() * sizeof(double);
    for (const auto& col : date_columns_) bytes += col.size() * sizeof(int32_t);
    return bytes;
  }

 private:
  template <typename Map>
  size_t IndexOf(const Map& map, const std::string& name) const {
    const auto it = map.find(name);
    ADICT_CHECK_MSG(it != map.end(), name.c_str());
    return it->second;
  }

  void CheckRows(uint64_t rows) {
    if (column_names_.empty()) {
      num_rows_ = rows;
    } else {
      ADICT_CHECK_MSG(rows == num_rows_, "column row count mismatch");
    }
  }

  std::string name_;
  uint64_t num_rows_ = 0;
  std::vector<std::string> column_names_;
  // unique_ptr: a VersionedStringColumn owns a Mutex and cannot move, but
  // the Table must stay movable.
  std::vector<std::unique_ptr<VersionedStringColumn>> string_columns_;
  std::vector<std::vector<int64_t>> int64_columns_;
  std::vector<std::vector<double>> double_columns_;
  std::vector<std::vector<int32_t>> date_columns_;
  std::unordered_map<std::string, size_t> string_index_;
  std::unordered_map<std::string, size_t> int64_index_;
  std::unordered_map<std::string, size_t> double_index_;
  std::unordered_map<std::string, size_t> date_index_;
};

}  // namespace adict

#endif  // ADICT_STORE_TABLE_H_
