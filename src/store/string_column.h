// Domain-encoded, usage-instrumented string column of the read-optimized
// store.
//
// Every dictionary access is counted, which is exactly the trace the
// compression manager consumes: the paper's offline prototype instruments
// the store, runs a representative workload, and feeds the counts into the
// format decision at the next rebuild. Because all dictionary formats are
// order-preserving, the dictionary can be rebuilt in a different format
// without touching the column vector.
#ifndef ADICT_STORE_STRING_COLUMN_H_
#define ADICT_STORE_STRING_COLUMN_H_

#include <atomic>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/tradeoff.h"
#include "dict/dictionary.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "obs/workload_profiler.h"
#include "store/column_vector.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace adict {

/// Domain encoding: sorted distinct values plus one value ID per row.
struct DomainEncoded {
  std::vector<std::string> dictionary;  // sorted, distinct
  std::vector<uint32_t> ids;            // per row, index into dictionary
};

/// Domain-encodes a raw value column.
DomainEncoded DomainEncode(std::span<const std::string> values);

class StringColumn {
 public:
  /// Empty placeholder column (no dictionary); assign a built column before
  /// using any accessor.
  StringColumn() = default;

  // Move-only (the dictionary is uniquely owned). The usage counters are
  // relaxed atomics — a read-only column is shared across scan threads and
  // every const accessor counts its access — so moves copy their values
  // explicitly; moving happens at build/merge time, before the column is
  // shared, never concurrently with readers.
  StringColumn(StringColumn&& other) noexcept
      : dict_(std::move(other.dict_)),
        vector_(std::move(other.vector_)),
        heat_(other.heat_),
        num_extracts_(
            other.num_extracts_.load(std::memory_order_relaxed)),
        num_locates_(other.num_locates_.load(std::memory_order_relaxed)) {}
  StringColumn& operator=(StringColumn&& other) noexcept {
    dict_ = std::move(other.dict_);
    vector_ = std::move(other.vector_);
    heat_ = other.heat_;
    num_extracts_.store(other.num_extracts_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    num_locates_.store(other.num_locates_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    return *this;
  }

  /// Builds from raw row values with an explicit dictionary format.
  static StringColumn FromValues(std::span<const std::string> values,
                                 DictFormat format = DictFormat::kFcInline);

  /// Builds from pre-encoded parts (used by merge and by format changes).
  static StringColumn FromEncoded(DomainEncoded encoded, DictFormat format);

  /// Assembles a column from an already-built dictionary and per-row value
  /// IDs (used by the guarded merge path, which builds — and possibly
  /// falls back — the dictionary before committing the column).
  static StringColumn FromParts(std::unique_ptr<Dictionary> dict,
                                std::span<const uint32_t> ids);

  /// Same, reusing an already-packed column vector. Because every format is
  /// order-preserving, a dictionary-only rebuild (format change under
  /// memory pressure) keeps the value IDs bit-identical — the rebuilder
  /// copies the packed words instead of decoding and re-packing the rows.
  /// `vector` must have been packed against a dictionary with the same
  /// entries as `dict`.
  static StringColumn FromParts(std::unique_ptr<Dictionary> dict,
                                ColumnVector vector);

  /// Value of `row` (counted as one extract).
  std::string GetValue(uint64_t row) const {
    CountExtracts(1);
    obs::ScopedColumnOp op(heat_, obs::ColumnOp::kExtract);
    std::string value = dict_->Extract(vector_.Get(row));
    op.AddBytes(value.size());
    return value;
  }

  /// Appends the value of `row` to `out` (counted as one extract).
  void GetValueInto(uint64_t row, std::string* out) const {
    CountExtracts(1);
    obs::ScopedColumnOp op(heat_, obs::ColumnOp::kExtract);
    const size_t before = out->size();
    dict_->ExtractInto(vector_.Get(row), out);
    op.AddBytes(out->size() - before);
  }

  /// Value ID of `row` (pure vector access, no dictionary cost).
  uint32_t GetValueId(uint64_t row) const { return vector_.Get(row); }

  /// Dictionary lookup (counted as one locate).
  LocateResult Locate(std::string_view value) const {
    num_locates_.fetch_add(1, std::memory_order_relaxed);
    if (obs::Enabled()) {
      static obs::Counter* locates = obs::Metrics().GetCounter(
          "dict.locate.count", "calls", "dictionary locate calls");
      locates->Increment();
    }
    obs::ScopedColumnOp op(heat_, obs::ColumnOp::kLocate);
    op.AddBytes(value.size());
    return dict_->Locate(value);
  }

  /// Extracts the dictionary entry for a value ID (counted as one extract).
  std::string ExtractId(uint32_t id) const {
    CountExtracts(1);
    obs::ScopedColumnOp op(heat_, obs::ColumnOp::kExtract);
    std::string value = dict_->Extract(id);
    op.AddBytes(value.size());
    return value;
  }

  /// Sequentially scans dictionary entries [first, first + count) (counted
  /// as `count` extracts). Block-based formats decode each block only once.
  void ScanDictionary(uint32_t first, uint32_t count,
                      const std::function<void(uint32_t, std::string_view)>&
                          fn) const {
    ADICT_TRACE_SPAN("column.scan_dictionary");
    num_extracts_.fetch_add(count, std::memory_order_relaxed);
    if (obs::Enabled()) {
      static obs::Counter* scanned = obs::Metrics().GetCounter(
          "dict.scan.entries", "entries", "entries read via dictionary scans");
      scanned->Increment(count);
    }
    // Bytes touched is approximated from the compressed dictionary size —
    // summing entry lengths in the callback would tax every scanned entry.
    obs::ScopedColumnOp op(count == 0 ? nullptr : heat_,
                           obs::ColumnOp::kScan, count);
    op.AddBytes(num_distinct() == 0
                    ? 0
                    : DictionaryBytes() * count / num_distinct());
    dict_->Scan(first, count, fn);
  }

  uint64_t num_rows() const { return vector_.size(); }
  uint32_t num_distinct() const { return dict_->size(); }
  const Dictionary& dictionary() const { return *dict_; }
  const ColumnVector& vector() const { return vector_; }
  DictFormat format() const { return dict_->format(); }

  /// Decompresses the full dictionary back into sorted distinct values
  /// (used at merge / format-change time, when reconstruction happens
  /// anyway). Not counted as extracts.
  std::vector<std::string> MaterializeDictionary() const;

  size_t MemoryBytes() const {
    return dict_->MemoryBytes() + vector_.MemoryBytes();
  }
  size_t DictionaryBytes() const { return dict_->MemoryBytes(); }
  size_t VectorBytes() const { return vector_.MemoryBytes(); }

  /// Rebuilds only the dictionary in a different format. Value IDs are
  /// stable across formats (all formats are order-preserving), so the
  /// column vector is reused as-is.
  void ChangeFormat(DictFormat format);

  /// Persistence: compressed dictionary + bit-packed vector, no re-encoding
  /// on load. Usage counters are not persisted (they describe one dictionary
  /// lifetime). Deserialize fails (never aborts) on a corrupt or truncated
  /// dictionary image.
  void Serialize(ByteWriter* out) const;
  static StatusOr<StringColumn> Deserialize(ByteReader* in);

  /// Usage counters since construction or the last ResetUsage(). The
  /// lifetime and column vector size fields are filled in, the counters
  /// reflect the traced accesses.
  ColumnUsage TracedUsage(double lifetime_seconds) const {
    ColumnUsage usage;
    usage.num_extracts = num_extracts_.load(std::memory_order_relaxed);
    usage.num_locates = num_locates_.load(std::memory_order_relaxed);
    usage.lifetime_seconds = lifetime_seconds;
    usage.column_vector_bytes = VectorBytes();
    return usage;
  }
  void ResetUsage() {
    num_extracts_.store(0, std::memory_order_relaxed);
    num_locates_.store(0, std::memory_order_relaxed);
  }

  /// Binds the column to a workload-profiler heat slot (null detaches).
  /// Not synchronized: bind before the column is shared across threads —
  /// Table::AddStringColumn does, and publishes inherit the slot inside
  /// the version mutex (VersionedStringColumn::Publish).
  void BindHeat(obs::ColumnHeat* heat) { heat_ = heat; }
  obs::ColumnHeat* heat() const { return heat_; }

 private:
  /// Bumps both the per-column usage trace and the global extract counter.
  void CountExtracts(uint64_t n) const {
    num_extracts_.fetch_add(n, std::memory_order_relaxed);
    if (obs::Enabled()) {
      static obs::Counter* extracts = obs::Metrics().GetCounter(
          "dict.extract.count", "calls", "dictionary extract calls");
      extracts->Increment(n);
    }
  }

  std::unique_ptr<Dictionary> dict_;
  ColumnVector vector_;
  // Workload-profiler slot, or null when unbound. Written only before the
  // column is shared (see BindHeat); the slot itself is internally
  // synchronized, so const accessors may record through it concurrently.
  obs::ColumnHeat* heat_ = nullptr;
  // Usage trace; relaxed atomics so concurrent readers of a shared column
  // can count their accesses without a data race (TSan-checked in
  // tests/concurrency_test.cc). Counts may interleave with TracedUsage()
  // reads — fine for a usage trace, which only feeds the format decision.
  mutable std::atomic<uint64_t> num_extracts_{0};
  mutable std::atomic<uint64_t> num_locates_{0};
};

/// Versioned holder of one read-optimized column: the snapshot-read side of
/// the delta-merge protocol (docs/parallelism.md).
///
/// Readers call Snapshot() — a brief lock to copy the shared_ptr — and then
/// scan their version without any further synchronization; a concurrent
/// merge builds the next version entirely off-lock (MergeDelta /
/// MergeDeltaAdaptive are pure functions of the old column) and Publish()es
/// it with a pointer swap. Readers therefore never block a merge and a
/// merge never blocks readers; a superseded version stays alive exactly
/// until its last snapshot holder drops it (shared_ptr refcount).
///
/// current() is the compatibility accessor for single-writer phases (load,
/// reconfiguration between workloads): it returns a reference into the
/// current version, valid only until the next Publish(). Phases that hold a
/// current() reference across a possible Publish must snapshot instead.
class VersionedStringColumn {
 public:
  explicit VersionedStringColumn(StringColumn column)
      : current_(std::make_shared<StringColumn>(std::move(column))) {}

  VersionedStringColumn(const VersionedStringColumn&) = delete;
  VersionedStringColumn& operator=(const VersionedStringColumn&) = delete;

  /// The current version, pinned: holds the version alive across any number
  /// of later Publish() calls.
  std::shared_ptr<const StringColumn> Snapshot() const
      ADICT_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return current_;
  }

  /// Atomically replaces the current version and bumps the epoch. The new
  /// column is fully built by the caller before the swap, so the lock is
  /// held only for the pointer exchange. The epoch is advanced while the
  /// lock is still held so PublishIfEpoch can compare epoch and version
  /// consistently.
  void Publish(StringColumn next) ADICT_EXCLUDES(mutex_) {
    auto version = std::make_shared<StringColumn>(std::move(next));
    uint64_t epoch;
    {
      MutexLock lock(&mutex_);
      // The heat slot follows the column across rebuilds and merges: bind
      // before the swap, while no reader can hold the new version yet.
      if (version->heat() == nullptr) version->BindHeat(current_->heat());
      current_ = std::move(version);
      epoch = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
    }
    if (obs::Enabled()) {
      static obs::Counter* publishes = obs::Metrics().GetCounter(
          "store.snapshot.publish", "versions",
          "column versions published by delta merges / format changes");
      static obs::Gauge* epoch_gauge = obs::Metrics().GetGauge(
          "store.snapshot.epoch", "epoch",
          "version epoch of the most recently published column");
      publishes->Increment();
      epoch_gauge->Set(static_cast<double>(epoch));
    }
  }

  /// Conditional publish: commits `next` only if the column's epoch still
  /// equals `expected_epoch` (i.e. no other writer published since the
  /// caller snapshotted). Returns false — and discards `next` — when the
  /// version moved on. This is the optimistic-concurrency primitive for
  /// writers whose input is derived from a snapshot (the recompression
  /// scheduler): a delta merge that races a pressure rebuild must never be
  /// overwritten by a column built from the pre-merge snapshot.
  bool PublishIfEpoch(StringColumn next, uint64_t expected_epoch)
      ADICT_EXCLUDES(mutex_) {
    auto version = std::make_shared<StringColumn>(std::move(next));
    uint64_t epoch;
    {
      MutexLock lock(&mutex_);
      if (epoch_.load(std::memory_order_acquire) != expected_epoch) {
        return false;
      }
      if (version->heat() == nullptr) version->BindHeat(current_->heat());
      current_ = std::move(version);
      epoch = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
    }
    if (obs::Enabled()) {
      static obs::Counter* publishes = obs::Metrics().GetCounter(
          "store.snapshot.publish_if_epoch", "versions",
          "column versions committed by epoch-guarded conditional publishes");
      static obs::Gauge* epoch_gauge = obs::Metrics().GetGauge(
          "store.snapshot.epoch", "epoch",
          "version epoch of the most recently published column");
      publishes->Increment();
      epoch_gauge->Set(static_cast<double>(epoch));
    }
    return true;
  }

  /// Versions published since construction (0 = the initial version).
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Single-writer-phase reference to the current version (see class
  /// comment for the validity contract).
  const StringColumn& current() const ADICT_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return *current_;
  }
  StringColumn& current() ADICT_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return *current_;
  }

 private:
  mutable Mutex mutex_{LockRank::kColumnVersion,
                       "VersionedStringColumn.mutex_"};
  std::shared_ptr<StringColumn> current_ ADICT_GUARDED_BY(mutex_);
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace adict

#endif  // ADICT_STORE_STRING_COLUMN_H_
