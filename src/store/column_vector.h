// Bit-packed vector of value IDs: the second half of domain encoding.
//
// The column vector stores one fixed-width code per row, wide enough for the
// dictionary's largest value ID. Together with the dictionary it replaces
// the original string column (paper Section 1).
#ifndef ADICT_STORE_COLUMN_VECTOR_H_
#define ADICT_STORE_COLUMN_VECTOR_H_

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "util/check.h"
#include "util/serde.h"

namespace adict {

class ColumnVector {
 public:
  ColumnVector() = default;

  /// Packs `ids`; `num_distinct` is the dictionary size (ids < num_distinct).
  ColumnVector(std::span<const uint32_t> ids, uint32_t num_distinct)
      : size_(ids.size()),
        bits_(num_distinct <= 1
                  ? 1
                  : std::bit_width(static_cast<unsigned>(num_distinct - 1))) {
    words_.assign((size_ * bits_ + 63) / 64, 0);
    for (uint64_t row = 0; row < size_; ++row) {
      ADICT_DCHECK(ids[row] < num_distinct);
      Set(row, ids[row]);
    }
  }

  /// Value ID of `row`.
  uint32_t Get(uint64_t row) const {
    ADICT_DCHECK(row < size_);
    const uint64_t bit = row * bits_;
    const uint64_t word = bit >> 6;
    const unsigned shift = bit & 63;
    uint64_t value = words_[word] >> shift;
    if (shift + bits_ > 64) {
      value |= words_[word + 1] << (64 - shift);
    }
    return static_cast<uint32_t>(value & Mask());
  }

  uint64_t size() const { return size_; }
  int bits_per_value() const { return bits_; }
  size_t MemoryBytes() const {
    return sizeof(*this) + words_.size() * sizeof(uint64_t);
  }

  void Serialize(ByteWriter* out) const {
    out->Write<uint64_t>(size_);
    out->Write<int32_t>(bits_);
    out->WriteVector(words_);
  }

  static ColumnVector Deserialize(ByteReader* in) {
    ColumnVector vec;
    vec.size_ = in->Read<uint64_t>();
    vec.bits_ = in->Read<int32_t>();
    vec.words_ = in->ReadVector<uint64_t>();
    ADICT_CHECK(vec.words_.size() == (vec.size_ * vec.bits_ + 63) / 64);
    return vec;
  }

 private:
  void Set(uint64_t row, uint32_t id) {
    const uint64_t bit = row * bits_;
    const uint64_t word = bit >> 6;
    const unsigned shift = bit & 63;
    words_[word] |= static_cast<uint64_t>(id) << shift;
    if (shift + bits_ > 64) {
      words_[word + 1] |= static_cast<uint64_t>(id) >> (64 - shift);
    }
  }

  uint64_t Mask() const {
    return bits_ == 64 ? ~0ull : (1ull << bits_) - 1;
  }

  uint64_t size_ = 0;
  int bits_ = 1;
  std::vector<uint64_t> words_;
};

}  // namespace adict

#endif  // ADICT_STORE_COLUMN_VECTOR_H_
