// Write-optimized delta store and the delta merge (paper Section 1/5):
// inserts go to an uncompressed, unsorted delta; periodically the delta is
// merged into the read-optimized main store, which rebuilds the dictionary —
// the moment the compression manager re-decides the dictionary format.
#ifndef ADICT_STORE_DELTA_H_
#define ADICT_STORE_DELTA_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/compression_manager.h"
#include "store/string_column.h"

namespace adict {

/// Write-optimized column: unsorted insertion-order dictionary plus one
/// local value ID per appended row.
class DeltaColumn {
 public:
  /// Appends one row.
  void Append(std::string value) {
    const auto [it, inserted] = value_to_id_.try_emplace(
        std::move(value), static_cast<uint32_t>(values_.size()));
    if (inserted) values_.push_back(it->first);
    rows_.push_back(it->second);
  }

  uint64_t num_rows() const { return rows_.size(); }
  uint32_t num_distinct() const { return static_cast<uint32_t>(values_.size()); }
  bool empty() const { return rows_.empty(); }

  /// Value of row `row`.
  std::string_view GetValue(uint64_t row) const { return values_[rows_[row]]; }
  /// Distinct values in insertion order.
  const std::vector<std::string_view>& distinct_values() const { return values_; }

  size_t MemoryBytes() const;

 private:
  // Views into the map keys (stable under rehash).
  std::vector<std::string_view> values_;
  std::vector<uint32_t> rows_;
  std::unordered_map<std::string, uint32_t> value_to_id_;
};

/// Merges `delta` into `main`, producing a new read-optimized column whose
/// rows are main's rows followed by delta's rows, with the dictionary
/// rebuilt in `format`.
StringColumn MergeDelta(const StringColumn& main, const DeltaColumn& delta,
                        DictFormat format);

/// Same, but lets the compression manager pick the format from the usage
/// traced on `main` over the past `lifetime_seconds`. The decision is
/// logged under `column_id`, and the rebuilt dictionary's actual size is
/// recorded against the prediction (see src/obs/). The rebuild is guarded
/// (core/build_guard.h): a build or validation failure degrades through
/// fc block to array instead of failing the merge, with each step recorded
/// in the decision log.
StringColumn MergeDeltaAdaptive(const StringColumn& main,
                                const DeltaColumn& delta,
                                const CompressionManager& manager,
                                double lifetime_seconds,
                                std::string_view column_id = {});

}  // namespace adict

#endif  // ADICT_STORE_DELTA_H_
