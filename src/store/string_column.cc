#include "store/string_column.h"

#include <algorithm>

#include "dict/serialization.h"
#include "obs/trace.h"
#include "util/check.h"

namespace adict {

DomainEncoded DomainEncode(std::span<const std::string> values) {
  DomainEncoded encoded;
  encoded.dictionary.assign(values.begin(), values.end());
  std::sort(encoded.dictionary.begin(), encoded.dictionary.end());
  encoded.dictionary.erase(
      std::unique(encoded.dictionary.begin(), encoded.dictionary.end()),
      encoded.dictionary.end());

  encoded.ids.reserve(values.size());
  for (const std::string& value : values) {
    const auto it = std::lower_bound(encoded.dictionary.begin(),
                                     encoded.dictionary.end(), value);
    encoded.ids.push_back(
        static_cast<uint32_t>(it - encoded.dictionary.begin()));
  }
  return encoded;
}

StringColumn StringColumn::FromValues(std::span<const std::string> values,
                                      DictFormat format) {
  return FromEncoded(DomainEncode(values), format);
}

StringColumn StringColumn::FromEncoded(DomainEncoded encoded,
                                       DictFormat format) {
  StringColumn column;
  column.dict_ = BuildDictionary(format, encoded.dictionary);
  column.vector_ = ColumnVector(
      encoded.ids, static_cast<uint32_t>(encoded.dictionary.size()));
  return column;
}

StringColumn StringColumn::FromParts(std::unique_ptr<Dictionary> dict,
                                     std::span<const uint32_t> ids) {
  ADICT_CHECK(dict != nullptr);
  StringColumn column;
  column.vector_ = ColumnVector(ids, dict->size());
  column.dict_ = std::move(dict);
  return column;
}

StringColumn StringColumn::FromParts(std::unique_ptr<Dictionary> dict,
                                     ColumnVector vector) {
  ADICT_CHECK(dict != nullptr);
  StringColumn column;
  column.vector_ = std::move(vector);
  column.dict_ = std::move(dict);
  return column;
}

std::vector<std::string> StringColumn::MaterializeDictionary() const {
  ADICT_TRACE_SPAN("column.materialize_dictionary");
  std::vector<std::string> values;
  values.reserve(dict_->size());
  for (uint32_t id = 0; id < dict_->size(); ++id) {
    values.push_back(dict_->Extract(id));
  }
  return values;
}

void StringColumn::ChangeFormat(DictFormat format) {
  if (format == dict_->format()) return;
  const std::vector<std::string> values = MaterializeDictionary();
  dict_ = BuildDictionary(format, values);
}

void StringColumn::Serialize(ByteWriter* out) const {
  std::vector<uint8_t> dict_bytes;
  SaveDictionary(*dict_, &dict_bytes);
  out->WriteVector(dict_bytes);
  vector_.Serialize(out);
}

StatusOr<StringColumn> StringColumn::Deserialize(ByteReader* in) {
  StringColumn column;
  const std::vector<uint8_t> dict_bytes = in->ReadVector<uint8_t>();
  StatusOr<std::unique_ptr<Dictionary>> dict = LoadDictionary(dict_bytes);
  if (!dict.ok()) return dict.status();
  column.dict_ = std::move(dict).value();
  column.vector_ = ColumnVector::Deserialize(in);
  return column;
}

}  // namespace adict
