#include "store/delta.h"

#include <algorithm>

#include "core/build_guard.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/failpoint.h"

namespace adict {

size_t DeltaColumn::MemoryBytes() const {
  size_t bytes = sizeof(*this) + rows_.size() * sizeof(uint32_t) +
                 values_.size() * sizeof(std::string_view);
  for (const auto& [value, id] : value_to_id_) {
    bytes += value.size() + sizeof(uint32_t) + 32;  // node overhead estimate
  }
  return bytes;
}

namespace {

DomainEncoded MergeEncode(const StringColumn& main, const DeltaColumn& delta) {
  ADICT_TRACE_SPAN("merge.encode");
  // Union of the two dictionaries.
  const std::vector<std::string> main_values = main.MaterializeDictionary();
  std::vector<std::string> delta_values;
  delta_values.reserve(delta.num_distinct());
  for (std::string_view v : delta.distinct_values()) {
    delta_values.emplace_back(v);
  }
  std::sort(delta_values.begin(), delta_values.end());

  DomainEncoded encoded;
  encoded.dictionary.reserve(main_values.size() + delta_values.size());
  std::set_union(main_values.begin(), main_values.end(), delta_values.begin(),
                 delta_values.end(), std::back_inserter(encoded.dictionary));

  // Remap main rows: old ID -> new ID is a monotone mapping.
  std::vector<uint32_t> main_remap(main_values.size());
  for (size_t i = 0; i < main_values.size(); ++i) {
    const auto it = std::lower_bound(encoded.dictionary.begin(),
                                     encoded.dictionary.end(), main_values[i]);
    main_remap[i] = static_cast<uint32_t>(it - encoded.dictionary.begin());
  }
  encoded.ids.reserve(main.num_rows() + delta.num_rows());
  for (uint64_t row = 0; row < main.num_rows(); ++row) {
    encoded.ids.push_back(main_remap[main.GetValueId(row)]);
  }
  // Append delta rows.
  for (uint64_t row = 0; row < delta.num_rows(); ++row) {
    const auto it =
        std::lower_bound(encoded.dictionary.begin(), encoded.dictionary.end(),
                         delta.GetValue(row));
    encoded.ids.push_back(static_cast<uint32_t>(it - encoded.dictionary.begin()));
  }
  return encoded;
}

}  // namespace

namespace {

// Shared merge telemetry; the timer is started by the caller so that the
// format decision (adaptive path) is included in the merge latency.
void CountMerge(const StringColumn& main, const DeltaColumn& delta) {
  if (!obs::Enabled()) return;
  static obs::Counter* merges = obs::Metrics().GetCounter(
      "store.merge.count", "merges", "delta merges performed");
  static obs::Counter* rows = obs::Metrics().GetCounter(
      "store.merge.rows", "rows", "rows in merged columns (main + delta)");
  static obs::Counter* delta_rows = obs::Metrics().GetCounter(
      "store.merge.delta_rows", "rows", "delta rows folded into the main");
  merges->Increment();
  rows->Increment(main.num_rows() + delta.num_rows());
  delta_rows->Increment(delta.num_rows());
}

obs::Histogram* MergeTimerHistogram() {
  return obs::Enabled()
             ? obs::Metrics().GetHistogram("store.merge.us", {}, "us",
                                           "delta merge latency incl. "
                                           "dictionary rebuild")
             : nullptr;
}

}  // namespace

StringColumn MergeDelta(const StringColumn& main, const DeltaColumn& delta,
                        DictFormat format) {
  ADICT_TRACE_SPAN("merge.delta");
  obs::ScopedTimer timer(MergeTimerHistogram());
  obs::ScopedColumnOp heat_op(main.heat(), obs::ColumnOp::kMerge, 1,
                              obs::OpTiming::kAlways);
  CountMerge(main, delta);
  StringColumn merged =
      StringColumn::FromEncoded(MergeEncode(main, delta), format);
  heat_op.AddBytes(merged.DictionaryBytes());
  merged.BindHeat(main.heat());
  return merged;
}

StringColumn MergeDeltaAdaptive(const StringColumn& main,
                                const DeltaColumn& delta,
                                const CompressionManager& manager,
                                double lifetime_seconds,
                                std::string_view column_id) {
  ADICT_TRACE_SPAN("merge.delta_adaptive");
  obs::ScopedTimer timer(MergeTimerHistogram());
  obs::ScopedColumnOp heat_op(main.heat(), obs::ColumnOp::kMerge, 1,
                              obs::OpTiming::kAlways);
  CountMerge(main, delta);
  DomainEncoded encoded = MergeEncode(main, delta);

  // The decision itself is guarded: if the manager fails (injected via the
  // `merge.choose_format` fail point), the merge proceeds with the paper's
  // robust mid-point format instead of dropping the delta.
  FormatDecision decision{DictFormat::kFcBlock, 0, -1};
  if (ADICT_FAIL_POINT("merge.choose_format")) {
    if (obs::Enabled()) {
      static obs::Counter* decision_fallbacks = obs::Metrics().GetCounter(
          "store.merge.decision_fallback", "events",
          "merges that used the default format because the format decision "
          "failed");
      decision_fallbacks->Increment();
    }
  } else {
    decision = manager.ChooseFormatLogged(
        encoded.dictionary, main.TracedUsage(lifetime_seconds), column_id);
  }

  GuardOptions guard;
  guard.predicted_dict_bytes = decision.predicted_dict_bytes;
  guard.log_sequence = decision.log_sequence;
  StatusOr<GuardedBuildResult> built =
      BuildDictionaryGuarded(decision.format, encoded.dictionary, guard);
  // The chain ends at `array`, which cannot fail on the (sorted, unique)
  // merge output; reaching this check means every format including the
  // uncompressed fallback failed — there is no column left to serve.
  ADICT_CHECK_MSG(built.ok(),
                  "delta merge: dictionary rebuild failed beyond the array "
                  "fallback");
  StringColumn merged =
      StringColumn::FromParts(std::move(built->dict), encoded.ids);
  if (decision.log_sequence != 0) {
    obs::Decisions().RecordActual(
        decision.log_sequence, static_cast<double>(merged.DictionaryBytes()));
  }
  heat_op.AddBytes(merged.DictionaryBytes());
  merged.BindHeat(main.heat());
  return merged;
}

}  // namespace adict
