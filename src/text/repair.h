// Re-Pair grammar compression (Larsson & Moffat, DCC 1999; paper Section 3.2).
//
// Training repeatedly replaces the most frequent pair of adjacent symbols by
// a fresh nonterminal until no pair occurs twice or the symbol space is
// exhausted. The symbol space is 12 bits (256 terminals + up to 3840 rules,
// "rp 12") or 16 bits (up to 65280 rules, "rp 16"); compressed strings are
// sequences of fixed-width symbol codes.
//
// Pairs never span two strings: every dictionary entry must decompress
// independently, so training inserts non-pairable separators between strings.
#ifndef ADICT_TEXT_REPAIR_H_
#define ADICT_TEXT_REPAIR_H_

#include <memory>
#include <unordered_map>
#include <utility>

#include "text/codec.h"

namespace adict {

class RePairCodec final : public StringCodec {
 public:
  /// Trains a Re-Pair grammar over `samples`. `symbol_bits` is 12 or 16.
  static std::unique_ptr<RePairCodec> Train(
      int symbol_bits, const std::vector<std::string_view>& samples);

  /// Reconstructs a codec written by Serialize (kind tag already consumed).
  static std::unique_ptr<RePairCodec> Deserialize(int symbol_bits,
                                                  ByteReader* in);

  CodecKind kind() const override {
    return symbol_bits_ == 12 ? CodecKind::kRePair12 : CodecKind::kRePair16;
  }
  uint64_t Encode(std::string_view s, BitWriter* out) const override;
  void Decode(BitReader* in, uint64_t bit_len, std::string* out) const override;
  size_t TableBytes() const override;
  bool order_preserving() const override { return false; }
  void Serialize(ByteWriter* out) const override;

  int symbol_bits() const { return symbol_bits_; }
  size_t num_rules() const { return rules_.size(); }

  /// Expands a single symbol (terminal or rule) to its character string.
  void ExpandSymbol(uint32_t symbol, std::string* out) const;

 private:
  explicit RePairCodec(int symbol_bits) : symbol_bits_(symbol_bits) {}

  static constexpr uint32_t kFirstRuleSymbol = 256;

  /// Parses `s` into grammar symbols by replaying rules in creation order
  /// (most frequent pairs were created first).
  void Parse(std::string_view s, std::vector<uint32_t>* symbols) const;

  int symbol_bits_;
  // rules_[k] = (left, right) defines symbol 256 + k.
  std::vector<std::pair<uint16_t, uint16_t>> rules_;
  // (a << 16 | b) -> rule index (not symbol).
  std::unordered_map<uint32_t, uint32_t> pair_to_rule_;
};

}  // namespace adict

#endif  // ADICT_TEXT_REPAIR_H_
