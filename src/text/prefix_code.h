// Shared machinery for per-character prefix codes (Huffman and Hu-Tucker).
//
// Both codecs are represented the same way once trained: an encode table
// (code value + length per byte) and a binary decode tree. They differ only
// in how the code lengths / tree shape are computed.
#ifndef ADICT_TEXT_PREFIX_CODE_H_
#define ADICT_TEXT_PREFIX_CODE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "text/codec.h"
#include "util/bit_stream.h"

namespace adict {

/// Base class implementing encode/decode for any per-byte prefix code.
class PrefixCodeCodec : public StringCodec {
 public:
  uint64_t Encode(std::string_view s, BitWriter* out) const override;
  void Decode(BitReader* in, uint64_t bit_len, std::string* out) const override;
  size_t TableBytes() const override;
  void Serialize(ByteWriter* out) const override;

  /// Code length in bits for byte `ch` (0 if the byte never occurred).
  int CodeLength(unsigned char ch) const { return lengths_[ch]; }

  /// Weighted average code length in bits per character under `freqs`.
  double AverageCodeLength(const std::array<uint64_t, 256>& freqs) const;

 protected:
  struct DecodeNode {
    // Child indices into nodes_; -1 if absent.
    int16_t child[2] = {-1, -1};
    // Decoded byte if this is a leaf, otherwise -1.
    int16_t leaf = -1;
  };

  /// Builds the encode table and decode tree from a code tree expressed as
  /// (leaf byte, depth) pairs in code order; used by subclasses after they
  /// computed the tree shape. `tree_root` is the root of `nodes`.
  void InstallTree(std::vector<DecodeNode> nodes, int root);

  /// Restores the state written by Serialize into `codec` (for the static
  /// Deserialize functions of the subclasses; the kind tag is already
  /// consumed).
  static void DeserializeInto(ByteReader* in, PrefixCodeCodec* codec);

  /// Counts byte frequencies over the samples.
  static std::array<uint64_t, 256> CountFrequencies(
      const std::vector<std::string_view>& samples);

  std::array<uint32_t, 256> codes_{};
  std::array<uint8_t, 256> lengths_{};
  std::vector<DecodeNode> nodes_;
  int root_ = -1;
};

/// Classic Huffman codec (minimum redundancy, not order-preserving).
class HuffmanCodec final : public PrefixCodeCodec {
 public:
  static std::unique_ptr<HuffmanCodec> Train(
      const std::vector<std::string_view>& samples);
  static std::unique_ptr<HuffmanCodec> Deserialize(ByteReader* in);

  CodecKind kind() const override { return CodecKind::kHuffman; }
  bool order_preserving() const override { return false; }

 private:
  HuffmanCodec() = default;
};

/// Hu-Tucker codec: optimal *alphabetic* prefix code. Codes of characters
/// compare in the same order as the characters themselves, so compressed
/// strings keep their sort order (paper Section 3.2).
class HuTuckerCodec final : public PrefixCodeCodec {
 public:
  static std::unique_ptr<HuTuckerCodec> Train(
      const std::vector<std::string_view>& samples);
  static std::unique_ptr<HuTuckerCodec> Deserialize(ByteReader* in);

  CodecKind kind() const override { return CodecKind::kHuTucker; }
  bool order_preserving() const override { return true; }

  /// Computes optimal alphabetic code lengths for `weights` (Hu-Tucker
  /// phase 1 + 2). Exposed for testing. weights[i] > 0 for all i.
  static std::vector<int> ComputeLevels(const std::vector<uint64_t>& weights);

 private:
  HuTuckerCodec() = default;
};

}  // namespace adict

#endif  // ADICT_TEXT_PREFIX_CODE_H_
