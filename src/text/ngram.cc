#include "text/ngram.h"

#include <algorithm>

#include "util/check.h"

namespace adict {

std::unique_ptr<NgramCodec> NgramCodec::Train(
    int n, const std::vector<std::string_view>& samples) {
  ADICT_CHECK(n == 2 || n == 3);
  auto codec = std::unique_ptr<NgramCodec>(new NgramCodec(n));

  // Count all n-gram occurrences (overlapping, within each string).
  std::unordered_map<uint32_t, uint64_t> counts;
  for (std::string_view s : samples) {
    if (s.size() < static_cast<size_t>(n)) continue;
    for (size_t i = 0; i + n <= s.size(); ++i) {
      ++counts[codec->Key(s.data() + i)];
    }
  }

  // Keep the 3840 most frequent; ties broken by key for determinism.
  std::vector<std::pair<uint64_t, uint32_t>> ranked;
  ranked.reserve(counts.size());
  for (const auto& [key, count] : counts) ranked.emplace_back(count, key);
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  const size_t kept = std::min<size_t>(ranked.size(), kNumNgramCodes);
  codec->ngrams_.reserve(kept);
  for (size_t i = 0; i < kept; ++i) {
    const uint32_t key = ranked[i].second;
    std::array<char, 3> gram{};
    for (int b = 0; b < n; ++b) {
      gram[n - 1 - b] = static_cast<char>((key >> (8 * b)) & 0xff);
    }
    codec->ngram_to_code_[key] = static_cast<uint16_t>(i);
    codec->ngrams_.push_back(gram);
  }
  return codec;
}

std::unique_ptr<NgramCodec> NgramCodec::Deserialize(int n, ByteReader* in) {
  ADICT_CHECK(n == 2 || n == 3);
  auto codec = std::unique_ptr<NgramCodec>(new NgramCodec(n));
  codec->ngrams_ = in->ReadVector<std::array<char, 3>>();
  codec->ngram_to_code_.reserve(codec->ngrams_.size());
  for (size_t i = 0; i < codec->ngrams_.size(); ++i) {
    codec->ngram_to_code_.emplace(codec->Key(codec->ngrams_[i].data()),
                                  static_cast<uint16_t>(i));
  }
  return codec;
}

void NgramCodec::Serialize(ByteWriter* out) const {
  out->Write<uint16_t>(static_cast<uint16_t>(kind()));
  out->WriteVector(ngrams_);
}

uint64_t NgramCodec::Encode(std::string_view s, BitWriter* out) const {
  uint64_t bits = 0;
  size_t i = 0;
  while (i < s.size()) {
    if (i + n_ <= s.size()) {
      const auto it = ngram_to_code_.find(Key(s.data() + i));
      if (it != ngram_to_code_.end()) {
        out->WriteBits(kNumBackupCodes + it->second, kCodeBits);
        bits += kCodeBits;
        i += n_;
        continue;
      }
    }
    out->WriteBits(static_cast<unsigned char>(s[i]), kCodeBits);
    bits += kCodeBits;
    ++i;
  }
  return bits;
}

void NgramCodec::Decode(BitReader* in, uint64_t bit_len,
                        std::string* out) const {
  ADICT_DCHECK(bit_len % kCodeBits == 0);
  const uint64_t num_codes = bit_len / kCodeBits;
  for (uint64_t c = 0; c < num_codes; ++c) {
    const uint32_t code = static_cast<uint32_t>(in->ReadBits(kCodeBits));
    if (code < kNumBackupCodes) {
      out->push_back(static_cast<char>(code));
    } else {
      out->append(ngrams_[code - kNumBackupCodes].data(), n_);
    }
  }
}

size_t NgramCodec::TableBytes() const {
  // Only the decode-side n-gram table is persisted with a read-only
  // dictionary; the n-gram -> code map is construction-time state.
  return ngrams_.size() * n_;
}

}  // namespace adict
