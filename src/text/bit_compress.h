// Bit Compression: every occurring character is represented by a fixed-width
// code of ceil(log2(#chars)) bits. Codes are assigned in character order, so
// the scheme is order-preserving. Because of the fixed width it decodes with
// very CPU-friendly code (paper Section 3.2).
#ifndef ADICT_TEXT_BIT_COMPRESS_H_
#define ADICT_TEXT_BIT_COMPRESS_H_

#include <array>
#include <memory>

#include "text/codec.h"

namespace adict {

class BitCompressCodec final : public StringCodec {
 public:
  /// Builds the code book from the characters occurring in `samples`.
  static std::unique_ptr<BitCompressCodec> Train(
      const std::vector<std::string_view>& samples);

  /// Reconstructs a codec written by Serialize (kind tag already consumed).
  static std::unique_ptr<BitCompressCodec> Deserialize(ByteReader* in);

  CodecKind kind() const override { return CodecKind::kBitCompress; }
  uint64_t Encode(std::string_view s, BitWriter* out) const override;
  void Decode(BitReader* in, uint64_t bit_len, std::string* out) const override;
  size_t TableBytes() const override;
  bool order_preserving() const override { return true; }
  void Serialize(ByteWriter* out) const override;

  /// Code width in bits.
  int bits_per_char() const { return bits_per_char_; }
  /// Number of distinct characters in the code book.
  int alphabet_size() const { return alphabet_size_; }

 private:
  BitCompressCodec() = default;

  /// Builds the full code book from the set of occurring characters.
  static std::unique_ptr<BitCompressCodec> FromAlphabet(
      const std::array<bool, 256>& seen);

  std::array<uint8_t, 256> char_to_code_;
  std::array<char, 256> code_to_char_;
  std::array<bool, 256> known_;
  int bits_per_char_ = 0;
  int alphabet_size_ = 0;
};

}  // namespace adict

#endif  // ADICT_TEXT_BIT_COMPRESS_H_
