// String compression codec interface.
//
// A codec is trained on the string content of one dictionary (for array-class
// dictionaries: the full strings; for front-coding dictionaries: the block
// suffixes) and then encodes/decodes individual strings into a shared bit
// stream. Decoding takes the exact bit length of the encoded string, which
// the dictionaries know from their offset arrays, so no codec needs
// terminators or padding.
#ifndef ADICT_TEXT_CODEC_H_
#define ADICT_TEXT_CODEC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/bit_stream.h"
#include "util/serde.h"

namespace adict {

/// The string compression schemes of the paper's survey (Section 3.3).
enum class CodecKind {
  kNone,         ///< raw bytes
  kBitCompress,  ///< fixed-width codes over the occurring characters (bc)
  kHuffman,      ///< minimum-redundancy prefix codes (not order-preserving)
  kHuTucker,     ///< optimal alphabetic prefix codes (order-preserving, hu)
  kNgram2,       ///< 12-bit codes for frequent 2-grams (ng2)
  kNgram3,       ///< 12-bit codes for frequent 3-grams (ng3)
  kRePair12,     ///< grammar compression, 12-bit symbol space (rp 12)
  kRePair16,     ///< grammar compression, 16-bit symbol space (rp 16)
};

/// Human-readable codec name as used in the paper ("bc", "hu", "ng2", ...).
std::string_view CodecKindName(CodecKind kind);

/// Trained, immutable string compressor.
class StringCodec {
 public:
  virtual ~StringCodec() = default;

  virtual CodecKind kind() const = 0;

  /// Appends the encoding of `s` to `out`. Returns the number of bits
  /// appended. All characters of `s` must have occurred in training data.
  virtual uint64_t Encode(std::string_view s, BitWriter* out) const = 0;

  /// Decodes exactly `bit_len` bits from `in`, appending the decoded
  /// characters to `out`.
  virtual void Decode(BitReader* in, uint64_t bit_len, std::string* out) const = 0;

  /// Heap footprint of the codec's tables (code books, grammars, ...),
  /// counted into the dictionary's total memory consumption.
  virtual size_t TableBytes() const = 0;

  /// True if byte-lexicographic order of plain strings is preserved by
  /// bit-lexicographic order of their encodings.
  virtual bool order_preserving() const = 0;

  /// Writes the codec's complete state (kind tag included) to `out`.
  virtual void Serialize(ByteWriter* out) const = 0;
};

/// Trains a codec of the given kind on `samples`. Returns nullptr for
/// CodecKind::kNone (dictionaries store raw bytes in that case).
std::unique_ptr<StringCodec> TrainCodec(
    CodecKind kind, const std::vector<std::string_view>& samples);

/// Serializes `codec` (which may be nullptr for the raw case).
void SerializeCodec(const StringCodec* codec, ByteWriter* out);

/// Reconstructs a codec previously written by SerializeCodec; nullptr for
/// the raw case.
std::unique_ptr<StringCodec> DeserializeCodec(ByteReader* in);

}  // namespace adict

#endif  // ADICT_TEXT_CODEC_H_
