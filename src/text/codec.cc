#include "text/codec.h"

#include "text/bit_compress.h"
#include "text/ngram.h"
#include "text/prefix_code.h"
#include "text/repair.h"
#include "util/check.h"

namespace adict {

std::string_view CodecKindName(CodecKind kind) {
  switch (kind) {
    case CodecKind::kNone:
      return "none";
    case CodecKind::kBitCompress:
      return "bc";
    case CodecKind::kHuffman:
      return "huffman";
    case CodecKind::kHuTucker:
      return "hu";
    case CodecKind::kNgram2:
      return "ng2";
    case CodecKind::kNgram3:
      return "ng3";
    case CodecKind::kRePair12:
      return "rp12";
    case CodecKind::kRePair16:
      return "rp16";
  }
  return "?";
}

std::unique_ptr<StringCodec> TrainCodec(
    CodecKind kind, const std::vector<std::string_view>& samples) {
  switch (kind) {
    case CodecKind::kNone:
      return nullptr;
    case CodecKind::kBitCompress:
      return BitCompressCodec::Train(samples);
    case CodecKind::kHuffman:
      return HuffmanCodec::Train(samples);
    case CodecKind::kHuTucker:
      return HuTuckerCodec::Train(samples);
    case CodecKind::kNgram2:
      return NgramCodec::Train(2, samples);
    case CodecKind::kNgram3:
      return NgramCodec::Train(3, samples);
    case CodecKind::kRePair12:
      return RePairCodec::Train(12, samples);
    case CodecKind::kRePair16:
      return RePairCodec::Train(16, samples);
  }
  ADICT_CHECK_MSG(false, "unknown codec kind");
  return nullptr;
}

void SerializeCodec(const StringCodec* codec, ByteWriter* out) {
  if (codec == nullptr) {
    out->Write<uint16_t>(static_cast<uint16_t>(CodecKind::kNone));
    return;
  }
  codec->Serialize(out);
}

std::unique_ptr<StringCodec> DeserializeCodec(ByteReader* in) {
  const uint16_t raw_kind = in->Read<uint16_t>();
  if (raw_kind > static_cast<uint16_t>(CodecKind::kRePair16)) {
    // Corrupt tag: reported through the reader so untrusted (kRecord-mode)
    // loads degrade to a Status instead of aborting.
    in->Fail("corrupt codec kind tag");
    return nullptr;
  }
  const CodecKind kind = static_cast<CodecKind>(raw_kind);
  switch (kind) {
    case CodecKind::kNone:
      return nullptr;
    case CodecKind::kBitCompress:
      return BitCompressCodec::Deserialize(in);
    case CodecKind::kHuffman:
      return HuffmanCodec::Deserialize(in);
    case CodecKind::kHuTucker:
      return HuTuckerCodec::Deserialize(in);
    case CodecKind::kNgram2:
      return NgramCodec::Deserialize(2, in);
    case CodecKind::kNgram3:
      return NgramCodec::Deserialize(3, in);
    case CodecKind::kRePair12:
      return RePairCodec::Deserialize(12, in);
    case CodecKind::kRePair16:
      return RePairCodec::Deserialize(16, in);
  }
  ADICT_CHECK_MSG(false, "corrupt codec kind tag");
  return nullptr;
}

}  // namespace adict
