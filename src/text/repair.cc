#include "text/repair.h"

#include <algorithm>
#include <queue>

#include "util/check.h"

namespace adict {
namespace {

constexpr int32_t kEmpty = -1;
constexpr int32_t kSeparator = -2;

inline uint32_t PairKey(uint32_t a, uint32_t b) { return (a << 16) | b; }

/// Mutable training sequence with hole skipping and per-pair occurrence
/// lists (the Larsson-Moffat data structure, with a lazy max-heap instead of
/// frequency buckets).
class Trainer {
 public:
  explicit Trainer(const std::vector<std::string_view>& samples) {
    size_t total = 0;
    for (std::string_view s : samples) total += s.size() + 1;
    seq_.reserve(total);
    for (std::string_view s : samples) {
      for (unsigned char ch : s) seq_.push_back(ch);
      seq_.push_back(kSeparator);
    }
    const int32_t n = static_cast<int32_t>(seq_.size());
    nxt_.resize(n);
    prv_.resize(n);
    occ_next_.assign(n, -1);
    occ_prev_.assign(n, -1);
    for (int32_t i = 0; i < n; ++i) {
      nxt_[i] = i + 1;
      prv_[i] = i - 1;
    }
    // Initial pair census.
    for (int32_t i = 0; i + 1 < n; ++i) {
      if (Pairable(seq_[i]) && Pairable(seq_[i + 1])) {
        AddOccurrence(i, i + 1);
      }
    }
  }

  /// Runs replacement rounds until no pair occurs twice or `max_rules` rules
  /// exist. Returns the rules in creation order.
  std::vector<std::pair<uint16_t, uint16_t>> Run(size_t max_rules) {
    std::vector<std::pair<uint16_t, uint16_t>> rules;
    while (rules.size() < max_rules && !heap_.empty()) {
      const auto [claimed, key] = heap_.top();
      heap_.pop();
      const auto it = counts_.find(key);
      if (it == counts_.end() || it->second != claimed || claimed < 2) {
        continue;  // stale heap entry
      }
      const uint32_t a = key >> 16;
      const uint32_t b = key & 0xffff;

      // Collect still-valid occurrence positions, left to right, skipping
      // overlaps (relevant for pairs like (x, x) in runs of x).
      std::vector<int32_t> positions;
      for (int32_t p = HeadOf(key); p >= 0; p = occ_next_[p]) {
        positions.push_back(p);
      }
      std::sort(positions.begin(), positions.end());
      std::vector<int32_t> valid;
      int32_t last_end = -1;
      for (int32_t p : positions) {
        if (seq_[p] != static_cast<int32_t>(a)) continue;
        const int32_t q = Next(p);
        if (q < 0 || seq_[q] != static_cast<int32_t>(b)) continue;
        if (p <= last_end) continue;  // overlaps previous replacement site
        valid.push_back(p);
        last_end = q;
      }
      if (valid.size() < 2) {
        // Overcounted (overlaps); keep the pair out of future consideration
        // at its stale count but do not spend a rule on it.
        counts_.erase(key);
        heads_.erase(key);
        continue;
      }

      const uint32_t rule_symbol = 256 + static_cast<uint32_t>(rules.size());
      rules.emplace_back(static_cast<uint16_t>(a), static_cast<uint16_t>(b));

      for (int32_t i : valid) {
        // Re-validate: an earlier replacement in this round may have
        // consumed a neighbor.
        if (seq_[i] != static_cast<int32_t>(a)) continue;
        const int32_t j = Next(i);
        if (j < 0 || seq_[j] != static_cast<int32_t>(b)) continue;

        const int32_t left = Prev(i);
        const int32_t right = Next(j);

        // Retire the old neighbor pairs.
        if (left >= 0 && Pairable(seq_[left])) RemoveOccurrence(left, i);
        if (right >= 0 && Pairable(seq_[right])) RemoveOccurrence(j, right);
        RemoveOccurrence(i, j);

        // Perform the replacement.
        seq_[i] = static_cast<int32_t>(rule_symbol);
        seq_[j] = kEmpty;
        nxt_[i] = right >= 0 ? right : static_cast<int32_t>(seq_.size());
        if (right >= 0) prv_[right] = i;

        // Introduce the new neighbor pairs.
        if (left >= 0 && Pairable(seq_[left])) AddOccurrence(left, i);
        if (right >= 0 && Pairable(seq_[right])) AddOccurrence(i, right);
      }
      counts_.erase(key);
      heads_.erase(key);
    }
    return rules;
  }

 private:
  static bool Pairable(int32_t symbol) { return symbol >= 0; }

  int32_t Next(int32_t i) const {
    const int32_t n = nxt_[i];
    return n < static_cast<int32_t>(seq_.size()) ? n : -1;
  }
  int32_t Prev(int32_t i) const { return prv_[i] >= 0 ? prv_[i] : -1; }

  int32_t HeadOf(uint32_t key) const {
    const auto it = heads_.find(key);
    return it == heads_.end() ? -1 : it->second;
  }

  /// Registers the pair occurrence starting at position `p` (second symbol at
  /// `q`) and bumps its count.
  void AddOccurrence(int32_t p, int32_t q) {
    const uint32_t key = PairKey(static_cast<uint32_t>(seq_[p]),
                                 static_cast<uint32_t>(seq_[q]));
    const uint32_t count = ++counts_[key];
    auto [it, inserted] = heads_.try_emplace(key, p);
    if (!inserted) {
      occ_next_[p] = it->second;
      occ_prev_[it->second] = p;
      it->second = p;
    } else {
      occ_next_[p] = -1;
    }
    occ_prev_[p] = -1;
    if (count >= 2) heap_.emplace(count, key);
  }

  /// Unregisters the pair occurrence starting at `p` (second symbol at `q`)
  /// and drops its count.
  void RemoveOccurrence(int32_t p, int32_t q) {
    const uint32_t key = PairKey(static_cast<uint32_t>(seq_[p]),
                                 static_cast<uint32_t>(seq_[q]));
    const auto cit = counts_.find(key);
    if (cit == counts_.end()) return;  // pair already fully retired
    if (--cit->second == 0) counts_.erase(cit);

    const int32_t prev = occ_prev_[p];
    const int32_t next = occ_next_[p];
    if (prev >= 0) occ_next_[prev] = next;
    if (next >= 0) occ_prev_[next] = prev;
    const auto hit = heads_.find(key);
    if (hit != heads_.end() && hit->second == p) {
      if (next >= 0) {
        hit->second = next;
      } else {
        heads_.erase(hit);
      }
    }
    occ_prev_[p] = occ_next_[p] = -1;
  }

  std::vector<int32_t> seq_;
  std::vector<int32_t> nxt_;
  std::vector<int32_t> prv_;
  std::vector<int32_t> occ_next_;
  std::vector<int32_t> occ_prev_;
  std::unordered_map<uint32_t, uint32_t> counts_;
  std::unordered_map<uint32_t, int32_t> heads_;
  // Lazy max-heap of (count, pair); entries go stale when counts change and
  // are re-validated against counts_ on pop.
  std::priority_queue<std::pair<uint32_t, uint32_t>> heap_;
};

}  // namespace

std::unique_ptr<RePairCodec> RePairCodec::Train(
    int symbol_bits, const std::vector<std::string_view>& samples) {
  ADICT_CHECK(symbol_bits == 12 || symbol_bits == 16);
  auto codec = std::unique_ptr<RePairCodec>(new RePairCodec(symbol_bits));
  const size_t max_rules = (1u << symbol_bits) - kFirstRuleSymbol;

  Trainer trainer(samples);
  codec->rules_ = trainer.Run(max_rules);
  codec->pair_to_rule_.reserve(codec->rules_.size());
  for (size_t k = 0; k < codec->rules_.size(); ++k) {
    const auto [a, b] = codec->rules_[k];
    codec->pair_to_rule_.emplace(PairKey(a, b), static_cast<uint32_t>(k));
  }
  return codec;
}

std::unique_ptr<RePairCodec> RePairCodec::Deserialize(int symbol_bits,
                                                      ByteReader* in) {
  ADICT_CHECK(symbol_bits == 12 || symbol_bits == 16);
  auto codec = std::unique_ptr<RePairCodec>(new RePairCodec(symbol_bits));
  const std::vector<uint32_t> packed = in->ReadVector<uint32_t>();
  codec->rules_.reserve(packed.size());
  codec->pair_to_rule_.reserve(packed.size());
  for (size_t k = 0; k < packed.size(); ++k) {
    const uint16_t a = static_cast<uint16_t>(packed[k] >> 16);
    const uint16_t b = static_cast<uint16_t>(packed[k]);
    codec->rules_.emplace_back(a, b);
    codec->pair_to_rule_.emplace(PairKey(a, b), static_cast<uint32_t>(k));
  }
  return codec;
}

void RePairCodec::Serialize(ByteWriter* out) const {
  out->Write<uint16_t>(static_cast<uint16_t>(kind()));
  std::vector<uint32_t> packed;
  packed.reserve(rules_.size());
  for (const auto& [a, b] : rules_) {
    packed.push_back(PairKey(a, b));
  }
  out->WriteVector(packed);
}

void RePairCodec::Parse(std::string_view s,
                        std::vector<uint32_t>* symbols) const {
  symbols->clear();
  symbols->reserve(s.size());
  for (unsigned char ch : s) symbols->push_back(ch);

  // Replay rules in creation order: repeatedly find the lowest-numbered rule
  // whose pair occurs, then replace all its (non-overlapping, leftmost-first)
  // occurrences. Creation order approximates the global frequency order the
  // trainer used, which keeps the parse close to the training parse.
  while (symbols->size() >= 2) {
    uint32_t best_rule = ~0u;
    for (size_t i = 0; i + 1 < symbols->size(); ++i) {
      const auto it =
          pair_to_rule_.find(PairKey((*symbols)[i], (*symbols)[i + 1]));
      if (it != pair_to_rule_.end() && it->second < best_rule) {
        best_rule = it->second;
      }
    }
    if (best_rule == ~0u) break;
    const uint32_t a = rules_[best_rule].first;
    const uint32_t b = rules_[best_rule].second;
    size_t out = 0;
    for (size_t i = 0; i < symbols->size();) {
      if (i + 1 < symbols->size() && (*symbols)[i] == a &&
          (*symbols)[i + 1] == b) {
        (*symbols)[out++] = kFirstRuleSymbol + best_rule;
        i += 2;
      } else {
        (*symbols)[out++] = (*symbols)[i];
        ++i;
      }
    }
    symbols->resize(out);
  }
}

uint64_t RePairCodec::Encode(std::string_view s, BitWriter* out) const {
  std::vector<uint32_t> symbols;
  Parse(s, &symbols);
  for (uint32_t sym : symbols) {
    ADICT_DCHECK(sym < (1u << symbol_bits_));
    out->WriteBits(sym, symbol_bits_);
  }
  return static_cast<uint64_t>(symbols.size()) * symbol_bits_;
}

void RePairCodec::ExpandSymbol(uint32_t symbol, std::string* out) const {
  // Iterative expansion with an explicit stack; right children are pushed
  // first so the output is produced left to right.
  std::vector<uint32_t> stack{symbol};
  while (!stack.empty()) {
    const uint32_t sym = stack.back();
    stack.pop_back();
    if (sym < kFirstRuleSymbol) {
      out->push_back(static_cast<char>(sym));
    } else {
      const auto [a, b] = rules_[sym - kFirstRuleSymbol];
      stack.push_back(b);
      stack.push_back(a);
    }
  }
}

void RePairCodec::Decode(BitReader* in, uint64_t bit_len,
                         std::string* out) const {
  ADICT_DCHECK(bit_len % symbol_bits_ == 0);
  const uint64_t num_symbols = bit_len / symbol_bits_;
  for (uint64_t i = 0; i < num_symbols; ++i) {
    ExpandSymbol(static_cast<uint32_t>(in->ReadBits(symbol_bits_)), out);
  }
}

size_t RePairCodec::TableBytes() const {
  // Only the decode-side grammar is persisted with a read-only dictionary;
  // the pair -> rule map is construction-time state.
  return rules_.size() * sizeof(rules_[0]);
}

}  // namespace adict
