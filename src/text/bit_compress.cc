#include "text/bit_compress.h"

#include <bit>

#include "util/check.h"

namespace adict {

std::unique_ptr<BitCompressCodec> BitCompressCodec::Train(
    const std::vector<std::string_view>& samples) {
  std::array<bool, 256> seen{};
  for (std::string_view s : samples) {
    for (unsigned char ch : s) seen[ch] = true;
  }
  return FromAlphabet(seen);
}

std::unique_ptr<BitCompressCodec> BitCompressCodec::Deserialize(ByteReader* in) {
  std::array<bool, 256> seen{};
  for (auto& flag : seen) flag = in->Read<uint8_t>() != 0;
  return FromAlphabet(seen);
}

void BitCompressCodec::Serialize(ByteWriter* out) const {
  out->Write<uint16_t>(static_cast<uint16_t>(kind()));
  // The alphabet fully determines the code book.
  for (bool flag : known_) out->Write<uint8_t>(flag ? 1 : 0);
}

std::unique_ptr<BitCompressCodec> BitCompressCodec::FromAlphabet(
    const std::array<bool, 256>& seen) {
  auto codec = std::unique_ptr<BitCompressCodec>(new BitCompressCodec());
  codec->known_ = seen;
  codec->char_to_code_.fill(0);
  codec->code_to_char_.fill(0);
  int next_code = 0;
  for (int ch = 0; ch < 256; ++ch) {
    if (!seen[ch]) continue;
    codec->char_to_code_[ch] = static_cast<uint8_t>(next_code);
    codec->code_to_char_[next_code] = static_cast<char>(ch);
    ++next_code;
  }
  codec->alphabet_size_ = next_code;
  // An empty alphabet (all-empty strings) still needs a defined width; a
  // single-character alphabet needs one bit.
  codec->bits_per_char_ =
      next_code <= 1 ? 1 : std::bit_width(static_cast<unsigned>(next_code - 1));
  return codec;
}

uint64_t BitCompressCodec::Encode(std::string_view s, BitWriter* out) const {
  for (unsigned char ch : s) {
    ADICT_DCHECK(known_[ch]);
    out->WriteBits(char_to_code_[ch], bits_per_char_);
  }
  return static_cast<uint64_t>(s.size()) * bits_per_char_;
}

void BitCompressCodec::Decode(BitReader* in, uint64_t bit_len,
                              std::string* out) const {
  ADICT_DCHECK(bit_len % bits_per_char_ == 0);
  const uint64_t n = bit_len / bits_per_char_;
  for (uint64_t i = 0; i < n; ++i) {
    out->push_back(code_to_char_[in->ReadBits(bits_per_char_)]);
  }
}

size_t BitCompressCodec::TableBytes() const {
  // char_to_code_, code_to_char_, known_.
  return sizeof(char_to_code_) + sizeof(code_to_char_) + sizeof(known_);
}

}  // namespace adict
