#include "text/prefix_code.h"

#include <algorithm>
#include <queue>

#include "util/check.h"

namespace adict {

// ---------------------------------------------------------------------------
// PrefixCodeCodec
// ---------------------------------------------------------------------------

uint64_t PrefixCodeCodec::Encode(std::string_view s, BitWriter* out) const {
  uint64_t bits = 0;
  for (unsigned char ch : s) {
    const int len = lengths_[ch];
    ADICT_DCHECK(len > 0);
    out->WriteBits(codes_[ch], len);
    bits += len;
  }
  return bits;
}

void PrefixCodeCodec::Decode(BitReader* in, uint64_t bit_len,
                             std::string* out) const {
  const uint64_t end = in->position() + bit_len;
  while (in->position() < end) {
    int node = root_;
    while (nodes_[node].leaf < 0) {
      node = nodes_[node].child[in->ReadBit()];
      ADICT_DCHECK(node >= 0);
    }
    out->push_back(static_cast<char>(nodes_[node].leaf));
  }
  ADICT_DCHECK(in->position() == end);
}

size_t PrefixCodeCodec::TableBytes() const {
  return sizeof(codes_) + sizeof(lengths_) +
         nodes_.size() * sizeof(DecodeNode);
}

double PrefixCodeCodec::AverageCodeLength(
    const std::array<uint64_t, 256>& freqs) const {
  uint64_t total = 0;
  uint64_t weighted = 0;
  for (int ch = 0; ch < 256; ++ch) {
    total += freqs[ch];
    weighted += freqs[ch] * lengths_[ch];
  }
  return total == 0 ? 0.0 : static_cast<double>(weighted) / total;
}

void PrefixCodeCodec::InstallTree(std::vector<DecodeNode> nodes, int root) {
  nodes_ = std::move(nodes);
  nodes_.shrink_to_fit();
  root_ = root;
  codes_.fill(0);
  lengths_.fill(0);
  if (root_ < 0) return;

  // DFS assigning 0 to the left edge and 1 to the right edge.
  struct Frame {
    int node;
    uint32_t code;
    int depth;
  };
  std::vector<Frame> stack{{root_, 0, 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const DecodeNode& n = nodes_[f.node];
    if (n.leaf >= 0) {
      // A one-symbol alphabet yields a root leaf; give it a 1-bit code.
      const int depth = std::max(f.depth, 1);
      codes_[n.leaf] = f.code;
      lengths_[n.leaf] = static_cast<uint8_t>(depth);
      continue;
    }
    if (n.child[0] >= 0) stack.push_back({n.child[0], f.code << 1, f.depth + 1});
    if (n.child[1] >= 0) {
      stack.push_back({n.child[1], (f.code << 1) | 1u, f.depth + 1});
    }
  }
}

void PrefixCodeCodec::Serialize(ByteWriter* out) const {
  out->Write<uint16_t>(static_cast<uint16_t>(kind()));
  out->WriteBytes(codes_.data(), sizeof(codes_));
  out->WriteBytes(lengths_.data(), sizeof(lengths_));
  out->WriteVector(nodes_);
  out->Write<int32_t>(root_);
}

void PrefixCodeCodec::DeserializeInto(ByteReader* in, PrefixCodeCodec* codec) {
  in->ReadBytes(codec->codes_.data(), sizeof(codec->codes_));
  in->ReadBytes(codec->lengths_.data(), sizeof(codec->lengths_));
  codec->nodes_ = in->ReadVector<DecodeNode>();
  codec->root_ = in->Read<int32_t>();
}

std::unique_ptr<HuffmanCodec> HuffmanCodec::Deserialize(ByteReader* in) {
  auto codec = std::unique_ptr<HuffmanCodec>(new HuffmanCodec());
  DeserializeInto(in, codec.get());
  return codec;
}

std::unique_ptr<HuTuckerCodec> HuTuckerCodec::Deserialize(ByteReader* in) {
  auto codec = std::unique_ptr<HuTuckerCodec>(new HuTuckerCodec());
  DeserializeInto(in, codec.get());
  return codec;
}

std::array<uint64_t, 256> PrefixCodeCodec::CountFrequencies(
    const std::vector<std::string_view>& samples) {
  std::array<uint64_t, 256> freqs{};
  for (std::string_view s : samples) {
    for (unsigned char ch : s) ++freqs[ch];
  }
  return freqs;
}

// ---------------------------------------------------------------------------
// Huffman
// ---------------------------------------------------------------------------

std::unique_ptr<HuffmanCodec> HuffmanCodec::Train(
    const std::vector<std::string_view>& samples) {
  const std::array<uint64_t, 256> freqs = CountFrequencies(samples);

  auto codec = std::unique_ptr<HuffmanCodec>(new HuffmanCodec());
  std::vector<DecodeNode> nodes;
  // (weight, tie-break id, node index); the tie-break id keeps the heap
  // deterministic across platforms.
  using Entry = std::tuple<uint64_t, int, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  int next_id = 0;
  for (int ch = 0; ch < 256; ++ch) {
    if (freqs[ch] == 0) continue;
    DecodeNode leaf;
    leaf.leaf = static_cast<int16_t>(ch);
    nodes.push_back(leaf);
    heap.emplace(freqs[ch], next_id++, static_cast<int>(nodes.size()) - 1);
  }
  if (nodes.empty()) {
    codec->InstallTree({}, -1);
    return codec;
  }
  if (nodes.size() == 1) {
    // One-symbol alphabet: decoding must still consume one bit per
    // character, so hang the leaf under both edges of an internal root.
    DecodeNode root;
    root.child[0] = root.child[1] = 0;
    nodes.push_back(root);
    codec->InstallTree(std::move(nodes), 1);
    return codec;
  }
  while (heap.size() > 1) {
    const auto [w0, id0, n0] = heap.top();
    heap.pop();
    const auto [w1, id1, n1] = heap.top();
    heap.pop();
    DecodeNode parent;
    parent.child[0] = static_cast<int16_t>(n0);
    parent.child[1] = static_cast<int16_t>(n1);
    nodes.push_back(parent);
    heap.emplace(w0 + w1, next_id++, static_cast<int>(nodes.size()) - 1);
  }
  const int root = std::get<2>(heap.top());
  codec->InstallTree(std::move(nodes), root);
  return codec;
}

// ---------------------------------------------------------------------------
// Hu-Tucker
// ---------------------------------------------------------------------------

std::vector<int> HuTuckerCodec::ComputeLevels(
    const std::vector<uint64_t>& weights) {
  const int n = static_cast<int>(weights.size());
  ADICT_CHECK(n > 0);
  if (n == 1) return {1};

  // Phase 1 (combination): repeatedly merge the minimum-weight *compatible*
  // pair. Two alive nodes are compatible if no alive original leaf lies
  // strictly between them. Ties are broken towards the leftmost pair, which
  // is the classic deterministic rule. O(n^2) per merge is fine for n <= 256.
  struct P1Node {
    uint64_t weight;
    bool alive;
    bool is_leaf;       // original leaf (blocks compatibility)
    int left_child;     // -1 for leaves
    int right_child;
  };
  std::vector<P1Node> pool;
  pool.reserve(2 * n);
  std::vector<int> slots(n);  // slots[i] = pool index of the node at position i
  for (int i = 0; i < n; ++i) {
    pool.push_back({weights[i], true, true, -1, -1});
    slots[i] = i;
  }
  // positions: indices into slots that still hold alive nodes, in order.
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;

  for (int merges = 0; merges < n - 1; ++merges) {
    // Find the minimum-weight compatible pair (i, j) with i < j in sequence
    // order.
    int best_i = -1, best_j = -1;
    uint64_t best_w = ~0ull;
    const int m = static_cast<int>(order.size());
    for (int i = 0; i < m; ++i) {
      const P1Node& a = pool[slots[order[i]]];
      for (int j = i + 1; j < m; ++j) {
        const P1Node& b = pool[slots[order[j]]];
        const uint64_t w = a.weight + b.weight;
        if (w < best_w) {
          best_w = w;
          best_i = i;
          best_j = j;
        }
        // An original leaf terminates the compatible window of i.
        if (b.is_leaf) break;
      }
    }
    ADICT_CHECK(best_i >= 0);
    const int li = order[best_i];
    const int lj = order[best_j];
    pool.push_back({best_w, true, false, slots[li], slots[lj]});
    slots[li] = static_cast<int>(pool.size()) - 1;
    order.erase(order.begin() + best_j);
  }

  // Depths of the original leaves in the phase-1 tree are the optimal
  // alphabetic code lengths (Hu-Tucker theorem).
  std::vector<int> levels(n, 0);
  struct Frame {
    int node;
    int depth;
  };
  std::vector<Frame> stack{{slots[order[0]], 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const P1Node& node = pool[f.node];
    if (node.left_child < 0) {
      // Original leaves are the first n pool entries, in alphabet order.
      levels[f.node] = f.depth;
      continue;
    }
    stack.push_back({node.left_child, f.depth + 1});
    stack.push_back({node.right_child, f.depth + 1});
  }
  return levels;
}

std::unique_ptr<HuTuckerCodec> HuTuckerCodec::Train(
    const std::vector<std::string_view>& samples) {
  const std::array<uint64_t, 256> freqs = CountFrequencies(samples);

  auto codec = std::unique_ptr<HuTuckerCodec>(new HuTuckerCodec());
  std::vector<int> alphabet;
  std::vector<uint64_t> weights;
  for (int ch = 0; ch < 256; ++ch) {
    if (freqs[ch] > 0) {
      alphabet.push_back(ch);
      weights.push_back(freqs[ch]);
    }
  }
  if (alphabet.empty()) {
    codec->InstallTree({}, -1);
    return codec;
  }
  if (alphabet.size() == 1) {
    // See HuffmanCodec::Train: one bit per character via a synthetic root.
    std::vector<DecodeNode> nodes(2);
    nodes[0].leaf = static_cast<int16_t>(alphabet[0]);
    nodes[1].child[0] = nodes[1].child[1] = 0;
    codec->InstallTree(std::move(nodes), 1);
    return codec;
  }

  const std::vector<int> levels = ComputeLevels(weights);

  // Phase 2 (reconstruction): rebuild an *alphabetic* tree from the level
  // sequence with the classic stack algorithm: push leaves left to right and
  // merge whenever the two top nodes share the same level.
  std::vector<DecodeNode> nodes;
  struct StackEntry {
    int node;
    int level;
  };
  std::vector<StackEntry> stack;
  for (size_t i = 0; i < alphabet.size(); ++i) {
    DecodeNode leaf;
    leaf.leaf = static_cast<int16_t>(alphabet[i]);
    nodes.push_back(leaf);
    stack.push_back({static_cast<int>(nodes.size()) - 1, levels[i]});
    while (stack.size() >= 2 &&
           stack[stack.size() - 2].level == stack.back().level) {
      const StackEntry right = stack.back();
      stack.pop_back();
      const StackEntry left = stack.back();
      stack.pop_back();
      DecodeNode parent;
      parent.child[0] = static_cast<int16_t>(left.node);
      parent.child[1] = static_cast<int16_t>(right.node);
      nodes.push_back(parent);
      stack.push_back({static_cast<int>(nodes.size()) - 1, left.level - 1});
    }
  }
  ADICT_CHECK_MSG(stack.size() == 1 && stack[0].level == 0,
                  "invalid Hu-Tucker level sequence");
  codec->InstallTree(std::move(nodes), stack[0].node);
  return codec;
}

}  // namespace adict
