// N-Gram compression (paper Section 3.2): the 4096 - 256 = 3840 most
// frequent character sequences of fixed length n are mapped to 12-bit codes;
// the remaining 256 codes encode single characters as backup. Fixed code
// width gives very fast extraction; the sort order is not preserved.
#ifndef ADICT_TEXT_NGRAM_H_
#define ADICT_TEXT_NGRAM_H_

#include <array>
#include <memory>
#include <unordered_map>

#include "text/codec.h"

namespace adict {

class NgramCodec final : public StringCodec {
 public:
  static constexpr int kCodeBits = 12;
  static constexpr int kNumCodes = 1 << kCodeBits;       // 4096
  static constexpr int kNumBackupCodes = 256;            // single characters
  static constexpr int kNumNgramCodes = kNumCodes - kNumBackupCodes;  // 3840

  /// Trains an n-gram codec (n = 2 or 3) on `samples`.
  static std::unique_ptr<NgramCodec> Train(
      int n, const std::vector<std::string_view>& samples);

  /// Reconstructs a codec written by Serialize (kind tag already consumed).
  static std::unique_ptr<NgramCodec> Deserialize(int n, ByteReader* in);

  CodecKind kind() const override {
    return n_ == 2 ? CodecKind::kNgram2 : CodecKind::kNgram3;
  }
  uint64_t Encode(std::string_view s, BitWriter* out) const override;
  void Decode(BitReader* in, uint64_t bit_len, std::string* out) const override;
  size_t TableBytes() const override;
  bool order_preserving() const override { return false; }
  void Serialize(ByteWriter* out) const override;

  /// The n in n-gram.
  int n() const { return n_; }
  /// Number of n-grams that received proper codes (<= 3840).
  int num_ngrams() const { return static_cast<int>(ngrams_.size()); }

 private:
  explicit NgramCodec(int n) : n_(n) {}

  /// Packs the first n bytes at `p` into an integer key.
  uint32_t Key(const char* p) const {
    uint32_t key = 0;
    for (int i = 0; i < n_; ++i) {
      key = (key << 8) | static_cast<unsigned char>(p[i]);
    }
    return key;
  }

  int n_;
  // n-gram -> code - 256; codes 0..255 are the single-byte backups.
  std::unordered_map<uint32_t, uint16_t> ngram_to_code_;
  // Covered n-grams by code - 256, each n_ bytes.
  std::vector<std::array<char, 3>> ngrams_;
};

}  // namespace adict

#endif  // ADICT_TEXT_NGRAM_H_
